//! Named error-model specifications: the bridge between the CLI's
//! `--error-model <preset|file.json>` option and the per-edge error rates the
//! noise-aware router consumes.
//!
//! A specification bundles the channel-level [`ErrorModel`] (uniform per-gate
//! and per-pulse-time infidelities) with a description of how error rates are
//! distributed over the device's edges: uniform, sampled "calibrated device"
//! heterogeneity, or explicit per-edge overrides. [`ErrorModelSpec::apply`]
//! stamps the distribution onto a [`CouplingGraph`], after which routing with
//! a positive `error_weight` and [`estimate_fidelity_edges`] both see the
//! calibrated rates.
//!
//! [`estimate_fidelity_edges`]: crate::fidelity::estimate_fidelity_edges

use crate::fidelity::ErrorModel;
use serde::Serialize;
use snailqc_topology::{builders, CouplingGraph};

/// How error rates are distributed over the device's edges.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum EdgeNoise {
    /// Every edge carries the model's uniform per-gate infidelity.
    Uniform,
    /// Seeded log-uniform heterogeneity around the per-gate infidelity (see
    /// [`builders::calibrate_edge_errors`]): `(spread, seed)`.
    Calibrated(f64, u64),
    /// Explicit `(qubit, qubit, rate)` overrides on top of the uniform rate.
    Overrides(Vec<(usize, usize, f64)>),
}

/// A complete, nameable error-model specification.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ErrorModelSpec {
    /// Channel-level infidelity scales.
    pub model: ErrorModel,
    /// Distribution of error rates over the device's edges.
    pub edges: EdgeNoise,
}

/// The canonical preset names accepted by [`ErrorModelSpec::parse`].
pub const PRESETS: [&str; 4] = ["default", "control", "decoherence", "calibrated"];

impl ErrorModelSpec {
    /// A uniform spec around `model`.
    pub fn uniform(model: ErrorModel) -> Self {
        Self {
            model,
            edges: EdgeNoise::Uniform,
        }
    }

    /// Resolves a named preset (matching is case/punctuation-forgiving).
    ///
    /// * `default` — the paper's running example (both channels, uniform).
    /// * `control` — control-error limited (gate counts matter), uniform.
    /// * `decoherence` — decoherence limited (duration matters), uniform.
    /// * `calibrated` — default channels with seeded ~10× per-edge spread.
    pub fn preset(name: &str) -> Option<Self> {
        match snailqc_util::normalize_name(name).as_str() {
            "default" | "uniform" => Some(Self::uniform(ErrorModel::default())),
            "control" => Some(Self::uniform(ErrorModel::control_limited(1e-3))),
            "decoherence" => Some(Self::uniform(ErrorModel::decoherence_limited(1e-2))),
            "calibrated" => Some(Self {
                model: ErrorModel::default(),
                edges: EdgeNoise::Calibrated(1.2, 2023),
            }),
            _ => None,
        }
    }

    /// Parses a JSON specification. All fields are optional and default to
    /// the `default` preset's values:
    ///
    /// ```json
    /// {
    ///   "per_gate_infidelity": 1e-3,
    ///   "per_pulse_time_infidelity": 1e-2,
    ///   "calibrated": {"spread": 1.2, "seed": 7},
    ///   "edges": [[0, 1, 0.01], [4, 7, 0.002]]
    /// }
    /// ```
    ///
    /// `calibrated` and `edges` are mutually exclusive.
    pub fn from_json(text: &str) -> Result<Self, String> {
        const KNOWN: [&str; 4] = [
            "per_gate_infidelity",
            "per_pulse_time_infidelity",
            "calibrated",
            "edges",
        ];
        let value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let serde::Value::Object(entries) = &value else {
            return Err("error-model JSON must be an object".into());
        };
        if entries.is_empty() {
            return Err(format!(
                "error-model JSON sets none of {}",
                KNOWN.join(", ")
            ));
        }
        // Reject misspelled and duplicate keys outright: silently ignoring
        // either would run the study on the wrong device (the Vec-backed
        // Value::get returns the first duplicate and drops the rest).
        let mut seen: Vec<&str> = Vec::new();
        for (key, _) in entries {
            if !KNOWN.contains(&key.as_str()) {
                return Err(format!(
                    "unknown error-model key `{key}` (known: {})",
                    KNOWN.join(", ")
                ));
            }
            if seen.contains(&key.as_str()) {
                return Err(format!("duplicate error-model key `{key}`"));
            }
            seen.push(key);
        }
        let defaults = ErrorModel::default();
        let field = |key: &str, default: f64| -> Result<f64, String> {
            match value.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_f64()
                    .ok_or_else(|| format!("`{key}` must be a number")),
            }
        };
        let model = ErrorModel {
            per_gate_infidelity: field("per_gate_infidelity", defaults.per_gate_infidelity)?,
            per_pulse_time_infidelity: field(
                "per_pulse_time_infidelity",
                defaults.per_pulse_time_infidelity,
            )?,
        };
        for rate in [model.per_gate_infidelity, model.per_pulse_time_infidelity] {
            if !(0.0..1.0).contains(&rate) {
                return Err(format!("infidelity {rate} outside [0, 1)"));
            }
        }
        let edges = match (value.get("calibrated"), value.get("edges")) {
            (Some(_), Some(_)) => {
                return Err("`calibrated` and `edges` are mutually exclusive".into())
            }
            (Some(cal), None) => {
                if let serde::Value::Object(cal_entries) = cal {
                    for (key, _) in cal_entries {
                        if key != "spread" && key != "seed" {
                            return Err(format!(
                                "unknown `calibrated` key `{key}` (known: spread, seed)"
                            ));
                        }
                    }
                }
                let spread = cal
                    .get("spread")
                    .and_then(|v| v.as_f64())
                    .ok_or("`calibrated.spread` must be a number")?;
                let seed = match cal.get("seed") {
                    None => 2023,
                    Some(v) => v
                        .as_u64()
                        .ok_or("`calibrated.seed` must be a non-negative integer")?,
                };
                if spread < 0.0 {
                    return Err("`calibrated.spread` must be non-negative".into());
                }
                EdgeNoise::Calibrated(spread, seed)
            }
            (None, Some(list)) => {
                let items = list.as_array().ok_or("`edges` must be an array")?;
                let mut overrides = Vec::with_capacity(items.len());
                for item in items {
                    let triple = item
                        .as_array()
                        .filter(|t| t.len() == 3)
                        .ok_or("each `edges` entry must be a [qubit, qubit, rate] triple")?;
                    let a = triple[0].as_u64().ok_or("edge qubit must be an integer")?;
                    let b = triple[1].as_u64().ok_or("edge qubit must be an integer")?;
                    let rate = triple[2].as_f64().ok_or("edge rate must be a number")?;
                    if !(0.0..1.0).contains(&rate) {
                        return Err(format!("edge rate {rate} outside [0, 1)"));
                    }
                    overrides.push((a as usize, b as usize, rate));
                }
                EdgeNoise::Overrides(overrides)
            }
            (None, None) => EdgeNoise::Uniform,
        };
        Ok(Self { model, edges })
    }

    /// Parses a CLI argument: a preset name, or a path to a JSON file (any
    /// argument naming an existing file, or ending in `.json`).
    pub fn parse(arg: &str) -> Result<Self, String> {
        let looks_like_file = arg.ends_with(".json") || std::path::Path::new(arg).is_file();
        if looks_like_file {
            let text = std::fs::read_to_string(arg)
                .map_err(|e| format!("reading error model `{arg}`: {e}"))?;
            return Self::from_json(&text).map_err(|e| format!("error model `{arg}`: {e}"));
        }
        Self::preset(arg).ok_or_else(|| {
            format!(
                "unknown error model `{arg}` (presets: {}; or a .json file)",
                PRESETS.join(", ")
            )
        })
    }

    /// Stamps this spec's edge-noise distribution onto `graph`: the uniform
    /// rate becomes the model's per-gate infidelity, then heterogeneity is
    /// sampled or overrides applied.
    ///
    /// Returns an error if an override names a pair that is not a device
    /// edge.
    pub fn apply(&self, graph: &mut CouplingGraph) -> Result<(), String> {
        let base = self.model.per_gate_infidelity;
        match &self.edges {
            EdgeNoise::Uniform => graph.set_uniform_edge_error(base),
            EdgeNoise::Calibrated(spread, seed) => {
                // A zero-infidelity control channel still supports calibrated
                // *relative* heterogeneity; anchor it at the default rate.
                let anchor = if base > 0.0 {
                    base
                } else {
                    snailqc_topology::DEFAULT_EDGE_ERROR
                };
                builders::calibrate_edge_errors(graph, anchor, *spread, *seed);
            }
            EdgeNoise::Overrides(overrides) => {
                graph.set_uniform_edge_error(base);
                for &(a, b, rate) in overrides {
                    if !graph.has_edge(a, b) {
                        return Err(format!(
                            "error-model override ({a},{b}) is not an edge of `{}`",
                            graph.name()
                        ));
                    }
                    graph.set_edge_error(a, b, rate);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snailqc_topology::catalog;

    #[test]
    fn presets_resolve_forgivingly() {
        assert!(ErrorModelSpec::preset("default").is_some());
        assert!(ErrorModelSpec::preset("Decoherence").is_some());
        assert!(ErrorModelSpec::preset("CONTROL").is_some());
        assert!(ErrorModelSpec::preset("calibrated").is_some());
        assert!(ErrorModelSpec::preset("nope").is_none());
        let d = ErrorModelSpec::preset("decoherence").unwrap();
        assert_eq!(d.model.per_gate_infidelity, 0.0);
        assert_eq!(d.edges, EdgeNoise::Uniform);
    }

    #[test]
    fn json_round_trip_with_overrides() {
        let spec = ErrorModelSpec::from_json(
            r#"{"per_gate_infidelity": 0.002, "edges": [[0, 1, 0.02], [2, 3, 0.004]]}"#,
        )
        .unwrap();
        assert_eq!(spec.model.per_gate_infidelity, 0.002);
        assert_eq!(
            spec.edges,
            EdgeNoise::Overrides(vec![(0, 1, 0.02), (2, 3, 0.004)])
        );
    }

    #[test]
    fn json_calibrated_defaults_seed() {
        let spec = ErrorModelSpec::from_json(r#"{"calibrated": {"spread": 0.8}}"#).unwrap();
        assert_eq!(spec.edges, EdgeNoise::Calibrated(0.8, 2023));
        // Seeds above i64::MAX are valid u64 values.
        let big = ErrorModelSpec::from_json(
            r#"{"calibrated": {"spread": 0.8, "seed": 10000000000000000000}}"#,
        )
        .unwrap();
        assert_eq!(
            big.edges,
            EdgeNoise::Calibrated(0.8, 10_000_000_000_000_000_000)
        );
    }

    #[test]
    fn json_rejects_bad_specs() {
        for bad in [
            "not json",
            "{}",
            "[1, 2]",
            r#"{"per_gate_infidelity": 2.0}"#,
            r#"{"edges": [[0, 1]]}"#,
            r#"{"edges": [[0, 1, 0.5]], "calibrated": {"spread": 1.0}}"#,
            r#"{"calibrated": {"spread": -1.0}}"#,
            // Misspelled or unknown keys must error, not silently no-op.
            r#"{"per_gate_infidelity": 1e-3, "egdes": [[0, 2, 0.01]]}"#,
            r#"{"calibrated": {"spread": 1.0, "sede": 7}}"#,
            // A seed of the wrong type must not fall back to the default.
            r#"{"calibrated": {"spread": 1.0, "seed": 7.5}}"#,
            r#"{"calibrated": {"spread": 1.0, "seed": -3}}"#,
            // Duplicate keys would silently drop one of the values.
            r#"{"per_gate_infidelity": 1e-3, "per_gate_infidelity": 0.1}"#,
        ] {
            assert!(ErrorModelSpec::from_json(bad).is_err(), "`{bad}`");
        }
    }

    #[test]
    fn apply_stamps_rates_onto_the_graph() {
        let mut g = catalog::corral11_16();
        ErrorModelSpec::from_json(r#"{"per_gate_infidelity": 0.005, "edges": [[0, 2, 0.05]]}"#)
            .unwrap()
            .apply(&mut g)
            .unwrap();
        assert_eq!(g.default_edge_error(), 0.005);
        assert_eq!(g.edge_error(0, 2), 0.05);
        assert!(!g.edge_errors_uniform());

        let mut g2 = catalog::corral11_16();
        let err = ErrorModelSpec::from_json(r#"{"edges": [[0, 1, 0.05]]}"#)
            .unwrap()
            .apply(&mut g2);
        // (0, 1) spans different posts and is not a corral edge.
        assert!(err.is_err() != g2.has_edge(0, 1));
    }

    #[test]
    fn apply_calibrated_produces_heterogeneous_rates() {
        let mut g = catalog::tree_20();
        ErrorModelSpec::preset("calibrated")
            .unwrap()
            .apply(&mut g)
            .unwrap();
        assert!(!g.edge_errors_uniform());
    }

    #[test]
    fn parse_rejects_unknown_names_with_the_preset_list() {
        let err = ErrorModelSpec::parse("bogus").unwrap_err();
        assert!(err.contains("default"), "{err}");
        assert!(err.contains("calibrated"), "{err}");
    }
}
