//! Name → device resolution across built-in catalog topologies and on-disk
//! device-spec files.
//!
//! The registry is how every `--device <file-or-name>` argument is resolved,
//! in one fixed order:
//!
//! 1. Anything that looks like a path (contains a separator, ends in
//!    `.json`, or names an existing file) loads directly via
//!    [`Device::from_spec_file`].
//! 2. Built-in catalog names ([`catalog::by_name`], forgiving matching).
//! 3. Spec files in the search path: every directory in
//!    [`DEVICE_PATH_ENV`] (`SNAILQC_DEVICE_PATH`, platform path-separator
//!    delimited), then the shipped `./devices` directory. Within a
//!    directory, a file matches by file stem first, then by the spec's
//!    `name` field — both via [`names_match`].
//!
//! Built-ins win over files of the same name so a stray spec file can never
//! silently change what the frozen-digest benchmarks run on.

use crate::device::Device;
use snailqc_devices::DeviceSpec;
use snailqc_topology::catalog;
use snailqc_util::names_match;
use std::path::{Path, PathBuf};

/// The environment variable naming extra spec directories, delimited by the
/// platform path separator (like `PATH`). Searched before `./devices`.
pub const DEVICE_PATH_ENV: &str = "SNAILQC_DEVICE_PATH";

/// Where a resolvable device comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceSource {
    /// One of the built-in catalog topologies.
    Builtin,
    /// A device-spec JSON file.
    File(PathBuf),
}

/// A named entry the registry can enumerate and resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryEntry {
    /// Canonical name: the catalog name, or the spec file's `name` field
    /// (falling back to the file stem when the file does not parse).
    pub name: String,
    /// Builtin, or the backing spec file.
    pub source: DeviceSource,
}

/// Resolves device names against the built-in catalog and a list of
/// spec-file directories.
#[derive(Debug, Clone)]
pub struct DeviceRegistry {
    dirs: Vec<PathBuf>,
}

impl DeviceRegistry {
    /// The default search path: `SNAILQC_DEVICE_PATH` directories (when
    /// set), then `./devices`.
    pub fn with_default_paths() -> Self {
        let mut dirs = Vec::new();
        if let Ok(path) = std::env::var(DEVICE_PATH_ENV) {
            dirs.extend(std::env::split_paths(&path).filter(|p| !p.as_os_str().is_empty()));
        }
        dirs.push(PathBuf::from("devices"));
        Self { dirs }
    }

    /// A registry over an explicit directory list (no environment input) —
    /// what tests use for hermetic resolution.
    pub fn with_paths(dirs: Vec<PathBuf>) -> Self {
        Self { dirs }
    }

    /// The directories this registry searches, in order.
    pub fn dirs(&self) -> &[PathBuf] {
        &self.dirs
    }

    /// Resolves a `--device` argument — a spec-file path, a built-in
    /// catalog name, or the name of a spec in the search path — into a
    /// ready [`Device`].
    pub fn resolve(&self, arg: &str) -> Result<Device, String> {
        if looks_like_path(arg) {
            return Device::from_spec_file(arg);
        }
        if let Some(graph) = catalog::by_name(arg) {
            return Ok(Device::from_graph(graph));
        }
        if let Some(path) = self.find_spec(arg) {
            return Device::from_spec_file(path);
        }
        let searched: Vec<String> = self.dirs.iter().map(|d| d.display().to_string()).collect();
        Err(format!(
            "unknown device `{arg}`; built-ins: {}; spec directories searched: {}",
            catalog::names().join(", "),
            if searched.is_empty() {
                "(none)".to_string()
            } else {
                searched.join(", ")
            }
        ))
    }

    /// Finds the spec file a bare name refers to, without building the
    /// device: file stems match first (cheap), then spec `name` fields.
    pub fn find_spec(&self, name: &str) -> Option<PathBuf> {
        for dir in &self.dirs {
            let files = spec_files(dir);
            for file in &files {
                let stem = file.file_stem().and_then(|s| s.to_str()).unwrap_or("");
                if names_match(stem, name) {
                    return Some(file.clone());
                }
            }
            for file in &files {
                if let Some(spec) = read_spec(file) {
                    if names_match(&spec.name, name) {
                        return Some(file.clone());
                    }
                }
            }
        }
        None
    }

    /// Everything this registry can resolve by name: the built-in catalog,
    /// then every `.json` file in the search path (sorted per directory).
    /// Files that fail to parse still appear (named by file stem) so
    /// listings surface them instead of hiding them.
    pub fn entries(&self) -> Vec<RegistryEntry> {
        let mut out: Vec<RegistryEntry> = catalog::names()
            .into_iter()
            .map(|name| RegistryEntry {
                name: name.to_string(),
                source: DeviceSource::Builtin,
            })
            .collect();
        for dir in &self.dirs {
            for file in spec_files(dir) {
                let name = read_spec(&file).map(|s| s.name).unwrap_or_else(|| {
                    file.file_stem()
                        .and_then(|s| s.to_str())
                        .unwrap_or("?")
                        .to_string()
                });
                out.push(RegistryEntry {
                    name,
                    source: DeviceSource::File(file),
                });
            }
        }
        out
    }
}

/// A `--device` argument that should be treated as a file path rather than
/// a registry name (mirrors `ErrorModelSpec::parse`'s heuristic).
fn looks_like_path(arg: &str) -> bool {
    arg.contains(std::path::MAIN_SEPARATOR)
        || arg.contains('/')
        || arg.ends_with(".json")
        || Path::new(arg).is_file()
}

/// The sorted `.json` files directly inside `dir` (empty when the
/// directory does not exist — an unset search path is not an error).
fn spec_files(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    files
}

fn read_spec(path: &Path) -> Option<DeviceSpec> {
    let text = std::fs::read_to_string(path).ok()?;
    DeviceSpec::parse(&text).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "snailqc-registry-{tag}-{}-{:?}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_spec(dir: &Path, file: &str, name: &str) -> PathBuf {
        let path = dir.join(file);
        fs::write(
            &path,
            format!(
                r#"{{"snailqc_device": 1, "name": "{name}",
                    "topology": {{"generator": "ring", "params": {{"qubits": 6}}}}}}"#
            ),
        )
        .unwrap();
        path
    }

    #[test]
    fn builtins_resolve_before_files() {
        let dir = temp_dir("builtin-priority");
        // A spec file shadowing a catalog name must lose to the builtin.
        write_spec(&dir, "corral11-16.json", "corral11-16");
        let registry = DeviceRegistry::with_paths(vec![dir.clone()]);
        let device = registry.resolve("corral11-16").expect("resolves");
        assert_eq!(device.label(), "Corral1,1-16", "builtin label expected");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn files_resolve_by_stem_and_by_spec_name() {
        let dir = temp_dir("by-name");
        write_spec(&dir, "ring6.json", "my_ring_six");
        let registry = DeviceRegistry::with_paths(vec![dir.clone()]);
        // By file stem (forgiving).
        assert_eq!(registry.resolve("Ring-6").expect("stem").num_qubits(), 6);
        // By the spec's `name` field (forgiving).
        assert_eq!(
            registry.resolve("My Ring Six").expect("name").num_qubits(),
            6
        );
        // Unknown names report both sources.
        let err = registry.resolve("nope").expect_err("unknown");
        assert!(err.contains("built-ins"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paths_load_directly_and_entries_list_both_sources() {
        let dir = temp_dir("entries");
        let path = write_spec(&dir, "ring6.json", "ring_six");
        let registry = DeviceRegistry::with_paths(vec![dir.clone()]);
        let device = registry
            .resolve(path.to_str().unwrap())
            .expect("path resolves");
        assert_eq!(device.num_qubits(), 6);

        let entries = registry.entries();
        assert!(entries
            .iter()
            .any(|e| e.name == "corral11-16" && e.source == DeviceSource::Builtin));
        assert!(entries
            .iter()
            .any(|e| e.name == "ring_six" && e.source == DeviceSource::File(path.clone())));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directories_are_not_an_error() {
        let registry =
            DeviceRegistry::with_paths(vec![PathBuf::from("/no/such/dir/anywhere-snailqc")]);
        assert!(registry.resolve("tree-20").is_ok(), "builtins still work");
        assert!(registry.find_spec("anything").is_none());
    }
}
