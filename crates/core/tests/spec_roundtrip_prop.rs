//! Property test: exporting any device graph as spec JSON and loading it
//! back through `Device::from_spec_str` reconstructs the identical coupling
//! structure and calibration.
//!
//! `DeviceSpec::from_graph` → `to_json` → `Device::from_spec_str` must
//! preserve the qubit count, the (lexicographic) edge list, the default
//! edge-error rate, and every per-edge override — to the exact f64 bits,
//! since those feed noise-aware routing digests.

use proptest::prelude::*;
use snailqc_core::device::Device;
use snailqc_devices::DeviceSpec;
use snailqc_topology::CouplingGraph;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spec_roundtrip_preserves_graph_and_calibration(
        n in 3usize..24,
        extra in proptest::collection::vec((0usize..24, 0usize..24), 0..20),
        uniform in 0usize..3,
        overrides in proptest::collection::vec((0usize..64, 1u32..400_000), 0..6),
    ) {
        let mut graph = CouplingGraph::new("prop", n);
        // A deterministic spanning structure keeps every sample connected;
        // the `extra` edges add arbitrary shortcuts (dups/self-loops are
        // ignored by `add_edge`).
        for q in 1..n {
            graph.add_edge(q, (q - 1) / 2);
        }
        for (a, b) in extra {
            let (a, b) = (a % n, b % n);
            if a != b {
                graph.add_edge(a, b);
            }
        }
        if uniform == 1 {
            graph.set_uniform_edge_error(3.3e-3);
        }
        let edges: Vec<(usize, usize)> = graph.edges().collect();
        for (pick, rate) in overrides {
            let (a, b) = edges[pick % edges.len()];
            graph.set_edge_error(a, b, rate as f64 * 1e-6);
        }

        let text = DeviceSpec::from_graph("prop_device", &graph).to_json();
        let device = Device::from_spec_str(&text)
            .unwrap_or_else(|e| panic!("reload: {e}\n{text}"));
        let rebuilt = device.graph();

        prop_assert_eq!(rebuilt.num_qubits(), graph.num_qubits());
        prop_assert_eq!(
            rebuilt.edges().collect::<Vec<_>>(),
            graph.edges().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            rebuilt.default_edge_error().to_bits(),
            graph.default_edge_error().to_bits()
        );
        prop_assert_eq!(
            rebuilt
                .edge_errors()
                .map(|(e, r)| (e, r.to_bits()))
                .collect::<Vec<_>>(),
            graph
                .edge_errors()
                .map(|(e, r)| (e, r.to_bits()))
                .collect::<Vec<_>>()
        );
    }
}
