//! A dense statevector simulator with pair/quad-iteration kernels.
//!
//! The co-design study itself only needs structural circuit metrics, but a
//! simulator makes the rest of the stack testable: workload generators are
//! checked against known output states and the router's correctness is
//! verified by comparing statevectors before and after SWAP insertion (up to
//! the tracked qubit permutation). States up to [`MAX_DENSE_QUBITS`] qubits
//! are supported; beyond that the stabilizer tableau engine in `snailqc-sim`
//! takes over for Clifford circuits.
//!
//! # Engine design
//!
//! The hot path iterates **directly over amplitude pairs/quads** instead of
//! scanning all `2^n` indices and skipping the 1/2 (or 3/4) that are not run
//! bases. For a gate on bit masks `b_hi > b_lo` the four quad streams are two
//! pairs of contiguous runs of length `b_lo`, so the inner loop is branch-free
//! and cache-blocked by construction. On x86-64 with AVX2 the generic
//! matrix kernels process two amplitudes per 256-bit lane using a
//! mul/permute/addsub sequence that performs *exactly* the scalar operation
//! order per lane (no FMA contraction), so vectorised results are
//! **bitwise identical** to the scalar kernels — and both are bitwise
//! identical to the pre-rewrite full-scan kernels preserved in
//! [`mod@reference`].
//!
//! Diagonal and permutation gates (Z/S/Rz/CZ/CX/SWAP/…) dispatch to
//! specialized kernels that skip the generic 4×4 matmul. To stay bitwise
//! faithful they emulate the `0·a` and `1·a` terms of the full matmul
//! ([`zero-sign emulation`](self#zero-sign-emulation)) instead of dropping
//! them.
//!
//! Above [`PARALLEL_MIN_DIM`] amplitudes, [`ExecMode::Auto`] splits the
//! independent runs across rayon `join` tasks. Each amplitude quad is
//! computed independently with the same per-quad operation order, so the
//! parallel output is bitwise identical to serial execution.
//!
//! # Zero-sign emulation
//!
//! IEEE-754 keeps signed zeros: `0.0 * x` has the sign of `x`, and
//! `(+0.0) + (-0.0) = +0.0`. The old kernels multiplied through exact-zero
//! matrix entries, so their outputs carry zero signs derived from *skipped*
//! amplitudes. The specialized kernels reproduce those signs with cheap
//! sign-bit arithmetic (`zero_mul`/`one_mul`) under the assumption that all
//! amplitudes are finite — which holds for any unitary circuit acting on a
//! normalized state.

use crate::circuit::Circuit;
use crate::gate::Gate;
use snailqc_math::complex::{C64, ONE, ZERO};
use snailqc_math::{Matrix2, Matrix4};
use snailqc_obs as obs;

/// Hard cap on the dense statevector size (`2^28` amplitudes = 4 GiB).
///
/// The pair-iteration kernels keep this comfortably usable on CI-class
/// machines; anything larger must go through the `snailqc-sim` stabilizer
/// engine (Clifford circuits only).
pub const MAX_DENSE_QUBITS: usize = 28;

/// Amplitude-count threshold above which [`ExecMode::Auto`] parallelises
/// (2^22 amplitudes = 64 MiB of state).
pub const PARALLEL_MIN_DIM: usize = 1 << 22;

/// Amplitudes per leaf task when the run space is split across threads.
const PAR_LEAF_AMPS: usize = 1 << 16;

/// Execution strategy for [`StateVector::apply_circuit_mode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Single-threaded.
    Serial,
    /// Force the rayon-join run splitting regardless of state size
    /// (useful for testing the serial/parallel bitwise identity).
    Parallel,
    /// Parallel when the state has at least [`PARALLEL_MIN_DIM`] amplitudes
    /// and more than one hardware thread is available.
    Auto,
}

/// A dense complex statevector over `n` qubits.
///
/// Qubit 0 is the most significant bit of the basis-state index, matching the
/// `|q0 q1 …⟩` labelling used by [`snailqc_math::gates`].
#[derive(Debug, Clone)]
pub struct StateVector {
    num_qubits: usize,
    amplitudes: Vec<C64>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= MAX_DENSE_QUBITS,
            "statevector simulator limited to MAX_DENSE_QUBITS = {MAX_DENSE_QUBITS} qubits \
             (requested {num_qubits}); use the snailqc-sim stabilizer engine for larger \
             Clifford circuits"
        );
        let mut amplitudes = vec![ZERO; 1 << num_qubits];
        amplitudes[0] = ONE;
        Self {
            num_qubits,
            amplitudes,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude vector in computational-basis order.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amplitudes
    }

    /// The probability of measuring basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amplitudes[index].norm_sqr()
    }

    /// Sum of all probabilities (should be 1 for a normalized state).
    pub fn total_probability(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum()
    }

    /// `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits);
        let overlap: C64 = self
            .amplitudes
            .iter()
            .zip(other.amplitudes.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum();
        overlap.norm_sqr()
    }

    fn bit_position(&self, qubit: usize) -> usize {
        self.num_qubits - 1 - qubit
    }

    /// Applies a single-qubit unitary to `qubit`.
    pub fn apply_1q(&mut self, m: &Matrix2, qubit: usize) {
        self.apply_1q_mode(m, qubit, false);
    }

    fn apply_1q_mode(&mut self, m: &Matrix2, qubit: usize, parallel: bool) {
        assert!(qubit < self.num_qubits);
        let bit = 1usize << self.bit_position(qubit);
        let m = [m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]];
        kernels::generic_1q(&mut self.amplitudes, bit, &m, parallel);
    }

    /// Applies a two-qubit unitary to `(q0, q1)` where `q0` is the most
    /// significant operand of the 4×4 matrix.
    pub fn apply_2q(&mut self, m: &Matrix4, q0: usize, q1: usize) {
        self.apply_2q_mode(m, q0, q1, false);
    }

    fn apply_2q_mode(&mut self, m: &Matrix4, q0: usize, q1: usize, parallel: bool) {
        assert!(q0 < self.num_qubits && q1 < self.num_qubits && q0 != q1);
        let b0 = 1usize << self.bit_position(q0);
        let b1 = 1usize << self.bit_position(q1);
        let mut flat = [ZERO; 16];
        for r in 0..4 {
            for c in 0..4 {
                flat[4 * r + c] = m[(r, c)];
            }
        }
        kernels::generic_2q(&mut self.amplitudes, b0, b1, &flat, parallel);
    }

    /// Applies a single gate, dispatching diagonal/permutation gates to
    /// their specialized kernels and everything else to the generic
    /// matrix kernels.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) {
        self.apply_gate_mode(gate, qubits, false);
    }

    fn apply_gate_mode(&mut self, gate: &Gate, qubits: &[usize], parallel: bool) {
        match gate {
            // Diagonal single-qubit gates: diag(d0, d1).
            Gate::I
            | Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::RZ(_)
            | Gate::P(_) => {
                let m = gate.matrix2().expect("1q matrix");
                assert!(qubits[0] < self.num_qubits);
                let bit = 1usize << self.bit_position(qubits[0]);
                kernels::diag_1q(&mut self.amplitudes, bit, m[(0, 0)], m[(1, 1)]);
            }
            // Pauli X: pure bit-flip permutation.
            Gate::X => {
                assert!(qubits[0] < self.num_qubits);
                let bit = 1usize << self.bit_position(qubits[0]);
                kernels::perm_x(&mut self.amplitudes, bit);
            }
            // Diagonal two-qubit gates: diag(d0, d1, d2, d3).
            Gate::CZ | Gate::CPhase(_) | Gate::RZZ(_) => {
                let m = gate.matrix4().expect("2q matrix");
                let (b0, b1) = self.two_qubit_masks(qubits);
                let d = [m[(0, 0)], m[(1, 1)], m[(2, 2)], m[(3, 3)]];
                kernels::diag_2q(&mut self.amplitudes, b0, b1, &d);
            }
            Gate::CX => {
                let (b0, b1) = self.two_qubit_masks(qubits);
                kernels::perm_cx(&mut self.amplitudes, b0, b1);
            }
            Gate::Swap => {
                let (b0, b1) = self.two_qubit_masks(qubits);
                kernels::perm_swap(&mut self.amplitudes, b0, b1);
            }
            _ => match gate.num_qubits() {
                1 => {
                    let m = gate.matrix2().expect("1q matrix");
                    self.apply_1q_mode(&m, qubits[0], parallel);
                }
                2 => {
                    let m = gate.matrix4().expect("2q matrix");
                    self.apply_2q_mode(&m, qubits[0], qubits[1], parallel);
                }
                _ => unreachable!("only 1- and 2-qubit gates exist"),
            },
        }
    }

    fn two_qubit_masks(&self, qubits: &[usize]) -> (usize, usize) {
        let (q0, q1) = (qubits[0], qubits[1]);
        assert!(q0 < self.num_qubits && q1 < self.num_qubits && q0 != q1);
        (
            1usize << self.bit_position(q0),
            1usize << self.bit_position(q1),
        )
    }

    /// Applies every instruction of `circuit` in order, then the circuit's
    /// global phase, using [`ExecMode::Auto`].
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        self.apply_circuit_mode(circuit, ExecMode::Auto);
    }

    /// Applies every instruction of `circuit` in order with an explicit
    /// execution mode. All modes produce bitwise-identical amplitudes.
    pub fn apply_circuit_mode(&mut self, circuit: &Circuit, mode: ExecMode) {
        assert_eq!(circuit.num_qubits(), self.num_qubits);
        let _span = obs::span("sim.apply");
        if obs::is_enabled() {
            obs::counter_add("sim.gates_applied", circuit.len() as u64);
        }
        let parallel = match mode {
            ExecMode::Serial => false,
            ExecMode::Parallel => true,
            ExecMode::Auto => {
                self.amplitudes.len() >= PARALLEL_MIN_DIM
                    && std::thread::available_parallelism()
                        .map(|p| p.get() > 1)
                        .unwrap_or(false)
            }
        };
        if circuit.global_phase() != 0.0 {
            let phase = C64::cis(circuit.global_phase());
            for amp in &mut self.amplitudes {
                *amp *= phase;
            }
        }
        for inst in circuit.instructions() {
            self.apply_gate_mode(&inst.gate, &inst.qubits, parallel);
        }
    }

    /// Permutes the qubit labels: qubit `q` of the current state becomes
    /// qubit `perm[q]` of the returned state. Used to undo the layout
    /// permutation a router leaves behind.
    pub fn permute_qubits(&self, perm: &[usize]) -> StateVector {
        assert_eq!(perm.len(), self.num_qubits);
        let mut out = StateVector {
            num_qubits: self.num_qubits,
            amplitudes: vec![ZERO; self.amplitudes.len()],
        };
        for (idx, amp) in self.amplitudes.iter().enumerate() {
            let mut new_idx = 0usize;
            for (q, &target) in perm.iter().enumerate() {
                let bit = (idx >> self.bit_position(q)) & 1;
                if bit == 1 {
                    new_idx |= 1 << (self.num_qubits - 1 - target);
                }
            }
            out.amplitudes[new_idx] = *amp;
        }
        out
    }
}

/// Runs `circuit` on `|0…0⟩` and returns the final state.
pub fn simulate(circuit: &Circuit) -> StateVector {
    let mut sv = StateVector::zero_state(circuit.num_qubits());
    sv.apply_circuit(circuit);
    sv
}

/// The pair/quad-iteration kernels behind [`StateVector`].
mod kernels {
    use super::*;

    const SIGN: u64 = 1u64 << 63;

    /// Bitwise-identical replacement for `ZERO * a` (finite `a`):
    /// `(0·re − 0·im, 0·im + 0·re)` computed from the operands' sign bits.
    #[inline(always)]
    fn zero_mul(a: C64) -> C64 {
        let sre = a.re.to_bits() & SIGN;
        let sim = a.im.to_bits() & SIGN;
        C64 {
            re: f64::from_bits(sre & !sim),
            im: f64::from_bits(sre & sim),
        }
    }

    /// `0.0 * x` for finite `x`: a zero carrying the sign of `x`.
    #[inline(always)]
    fn zsign(x: f64) -> f64 {
        f64::from_bits(x.to_bits() & SIGN)
    }

    /// Bitwise-identical replacement for `ONE * a` (finite `a`):
    /// `(1·re − 0·im, 1·im + 0·re)`.
    #[inline(always)]
    fn one_mul(a: C64) -> C64 {
        C64 {
            re: a.re - zsign(a.im),
            im: a.im + zsign(a.re),
        }
    }

    /// A raw amplitude pointer that may cross thread boundaries. Soundness:
    /// the parallel drivers hand each task a disjoint set of runs.
    #[derive(Clone, Copy)]
    struct SendPtr(*mut C64);
    unsafe impl Send for SendPtr {}
    unsafe impl Sync for SendPtr {}

    /// Recursively splits `[run_lo, run_hi)` across rayon `join` tasks,
    /// processing at most `leaf` runs per task.
    fn par_runs<F>(ptr: SendPtr, run_lo: usize, run_hi: usize, leaf: usize, f: &F)
    where
        F: Fn(SendPtr, usize) + Sync,
    {
        if run_hi - run_lo <= leaf {
            for run in run_lo..run_hi {
                f(ptr, run);
            }
        } else {
            let mid = run_lo + (run_hi - run_lo) / 2;
            rayon::join(
                || par_runs(ptr, run_lo, mid, leaf, f),
                || par_runs(ptr, mid, run_hi, leaf, f),
            );
        }
    }

    // --- generic 1q ---------------------------------------------------------

    /// One contiguous pair run: streams `[p0, p0+len)` and `[p1, p1+len)`.
    ///
    /// Safety: both streams must be in-bounds and disjoint.
    unsafe fn pair_run_scalar(m: &[C64; 4], p0: *mut C64, p1: *mut C64, len: usize) {
        for k in 0..len {
            let a0 = *p0.add(k);
            let a1 = *p1.add(k);
            *p0.add(k) = m[0] * a0 + m[1] * a1;
            *p1.add(k) = m[2] * a0 + m[3] * a1;
        }
    }

    /// AVX2 pair run: two complex amplitudes per 256-bit vector. The
    /// mul/permute/addsub sequence reproduces the exact scalar operation
    /// order per lane (`m·a` then the `+`), so results are bit-identical.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn pair_run_avx2(m: &[C64; 4], p0: *mut C64, p1: *mut C64, len: usize) {
        use std::arch::x86_64::*;
        let mut reb = [_mm256_setzero_pd(); 4];
        let mut imb = [_mm256_setzero_pd(); 4];
        for (i, e) in m.iter().enumerate() {
            reb[i] = _mm256_set1_pd(e.re);
            imb[i] = _mm256_set1_pd(e.im);
        }
        let mut k = 0usize;
        while k < len {
            let v0 = _mm256_loadu_pd(p0.add(k) as *const f64);
            let v1 = _mm256_loadu_pd(p1.add(k) as *const f64);
            let w0 = _mm256_permute_pd(v0, 0b0101);
            let w1 = _mm256_permute_pd(v1, 0b0101);
            let o0 = _mm256_add_pd(
                _mm256_addsub_pd(_mm256_mul_pd(reb[0], v0), _mm256_mul_pd(imb[0], w0)),
                _mm256_addsub_pd(_mm256_mul_pd(reb[1], v1), _mm256_mul_pd(imb[1], w1)),
            );
            let o1 = _mm256_add_pd(
                _mm256_addsub_pd(_mm256_mul_pd(reb[2], v0), _mm256_mul_pd(imb[2], w0)),
                _mm256_addsub_pd(_mm256_mul_pd(reb[3], v1), _mm256_mul_pd(imb[3], w1)),
            );
            _mm256_storeu_pd(p0.add(k) as *mut f64, o0);
            _mm256_storeu_pd(p1.add(k) as *mut f64, o1);
            k += 2;
        }
    }

    #[inline]
    fn avx2_available() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Safety: `base + 2*bit <= amps.len()`, base aligned to `2*bit`.
    unsafe fn pair_run(ptr: *mut C64, base: usize, bit: usize, m: &[C64; 4], vector: bool) {
        let p0 = ptr.add(base);
        let p1 = ptr.add(base + bit);
        #[cfg(target_arch = "x86_64")]
        if vector && bit >= 2 {
            return pair_run_avx2(m, p0, p1, bit);
        }
        let _ = vector;
        pair_run_scalar(m, p0, p1, bit);
    }

    pub(super) fn generic_1q(amps: &mut [C64], bit: usize, m: &[C64; 4], parallel: bool) {
        let dim = amps.len();
        let vector = avx2_available();
        let ptr = amps.as_mut_ptr();
        let nruns = dim / (2 * bit);
        if parallel && nruns >= 2 {
            let leaf = (PAR_LEAF_AMPS / (2 * bit)).max(1);
            par_runs(
                SendPtr(ptr),
                0,
                nruns,
                leaf,
                &|p: SendPtr, run: usize| unsafe {
                    pair_run(p.0, run * 2 * bit, bit, m, vector);
                },
            );
        } else {
            for run in 0..nruns {
                unsafe { pair_run(ptr, run * 2 * bit, bit, m, vector) };
            }
        }
    }

    // --- generic 2q ---------------------------------------------------------

    /// One quad run at `base`: streams `base`, `base|b1`, `base|b0`,
    /// `base|b0|b1`, each of length `bl = min(b0, b1)`. The stream order
    /// mirrors the index array of the reference kernel, so row binding is
    /// independent of which operand mask is larger.
    ///
    /// Safety: all four streams in-bounds; `base` aligned so the runs are
    /// disjoint (guaranteed by the `2·bl` stepping of the drivers).
    unsafe fn quad_run_scalar(
        m: &[C64; 16],
        p0: *mut C64,
        p1: *mut C64,
        p2: *mut C64,
        p3: *mut C64,
        len: usize,
    ) {
        for k in 0..len {
            let a = [*p0.add(k), *p1.add(k), *p2.add(k), *p3.add(k)];
            let mut out = [ZERO; 4];
            for r in 0..4 {
                let mut acc = ZERO;
                for (c, amp) in a.iter().enumerate() {
                    acc += m[4 * r + c] * *amp;
                }
                out[r] = acc;
            }
            *p0.add(k) = out[0];
            *p1.add(k) = out[1];
            *p2.add(k) = out[2];
            *p3.add(k) = out[3];
        }
    }

    /// AVX2 quad run: two complex amplitudes per vector across the four
    /// streams. Per lane the operation order is exactly the scalar
    /// `acc = ZERO; acc += m·a_c` chain (addsub ≡ the sub/add halves of the
    /// complex product; no FMA), so results are bit-identical to
    /// [`quad_run_scalar`] and the reference kernel.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn quad_run_avx2(
        m: &[C64; 16],
        p0: *mut C64,
        p1: *mut C64,
        p2: *mut C64,
        p3: *mut C64,
        len: usize,
    ) {
        use std::arch::x86_64::*;
        let mut reb = [_mm256_setzero_pd(); 16];
        let mut imb = [_mm256_setzero_pd(); 16];
        for (i, e) in m.iter().enumerate() {
            reb[i] = _mm256_set1_pd(e.re);
            imb[i] = _mm256_set1_pd(e.im);
        }
        let mut k = 0usize;
        while k < len {
            let v0 = _mm256_loadu_pd(p0.add(k) as *const f64);
            let v1 = _mm256_loadu_pd(p1.add(k) as *const f64);
            let v2 = _mm256_loadu_pd(p2.add(k) as *const f64);
            let v3 = _mm256_loadu_pd(p3.add(k) as *const f64);
            let w0 = _mm256_permute_pd(v0, 0b0101);
            let w1 = _mm256_permute_pd(v1, 0b0101);
            let w2 = _mm256_permute_pd(v2, 0b0101);
            let w3 = _mm256_permute_pd(v3, 0b0101);
            macro_rules! row {
                ($r:expr) => {{
                    let mut acc = _mm256_setzero_pd();
                    acc = _mm256_add_pd(
                        acc,
                        _mm256_addsub_pd(
                            _mm256_mul_pd(reb[4 * $r], v0),
                            _mm256_mul_pd(imb[4 * $r], w0),
                        ),
                    );
                    acc = _mm256_add_pd(
                        acc,
                        _mm256_addsub_pd(
                            _mm256_mul_pd(reb[4 * $r + 1], v1),
                            _mm256_mul_pd(imb[4 * $r + 1], w1),
                        ),
                    );
                    acc = _mm256_add_pd(
                        acc,
                        _mm256_addsub_pd(
                            _mm256_mul_pd(reb[4 * $r + 2], v2),
                            _mm256_mul_pd(imb[4 * $r + 2], w2),
                        ),
                    );
                    acc = _mm256_add_pd(
                        acc,
                        _mm256_addsub_pd(
                            _mm256_mul_pd(reb[4 * $r + 3], v3),
                            _mm256_mul_pd(imb[4 * $r + 3], w3),
                        ),
                    );
                    acc
                }};
            }
            let o0 = row!(0);
            let o1 = row!(1);
            let o2 = row!(2);
            let o3 = row!(3);
            _mm256_storeu_pd(p0.add(k) as *mut f64, o0);
            _mm256_storeu_pd(p1.add(k) as *mut f64, o1);
            _mm256_storeu_pd(p2.add(k) as *mut f64, o2);
            _mm256_storeu_pd(p3.add(k) as *mut f64, o3);
            k += 2;
        }
    }

    /// Safety: see [`quad_run_scalar`].
    unsafe fn quad_run(
        ptr: *mut C64,
        base: usize,
        b0: usize,
        b1: usize,
        bl: usize,
        m: &[C64; 16],
        vector: bool,
    ) {
        let p0 = ptr.add(base);
        let p1 = ptr.add(base | b1);
        let p2 = ptr.add(base | b0);
        let p3 = ptr.add(base | b0 | b1);
        #[cfg(target_arch = "x86_64")]
        if vector && bl >= 2 {
            return quad_run_avx2(m, p0, p1, p2, p3, bl);
        }
        let _ = vector;
        quad_run_scalar(m, p0, p1, p2, p3, bl);
    }

    /// Base index of quad run `run` for masks `(bh, bl)`: runs advance by
    /// `2·bl` inside a `bh`-superblock and by `2·bh` across superblocks.
    #[inline(always)]
    fn quad_run_base(run: usize, bh: usize, bl: usize) -> usize {
        let runs_per_block = bh / (2 * bl);
        let hi = run / runs_per_block;
        let mid = run % runs_per_block;
        hi * 2 * bh + mid * 2 * bl
    }

    pub(super) fn generic_2q(
        amps: &mut [C64],
        b0: usize,
        b1: usize,
        m: &[C64; 16],
        parallel: bool,
    ) {
        let dim = amps.len();
        let (bh, bl) = (b0.max(b1), b0.min(b1));
        let vector = avx2_available();
        let ptr = amps.as_mut_ptr();
        let nruns = dim / (4 * bl);
        if parallel && nruns >= 2 {
            let leaf = (PAR_LEAF_AMPS / (4 * bl)).max(1);
            par_runs(
                SendPtr(ptr),
                0,
                nruns,
                leaf,
                &|p: SendPtr, run: usize| unsafe {
                    quad_run(p.0, quad_run_base(run, bh, bl), b0, b1, bl, m, vector);
                },
            );
        } else {
            for run in 0..nruns {
                unsafe { quad_run(ptr, quad_run_base(run, bh, bl), b0, b1, bl, m, vector) };
            }
        }
    }

    // --- specialized kernels ------------------------------------------------
    //
    // Each specialized kernel reproduces the exact accumulation chain of the
    // generic kernel with the gate's known-zero/one entries replaced by
    // `zero_mul`/`one_mul`, so outputs stay bitwise identical while skipping
    // the full complex matmul.

    /// diag(d0, d1) on one qubit.
    pub(super) fn diag_1q(amps: &mut [C64], bit: usize, d0: C64, d1: C64) {
        let dim = amps.len();
        let mut base = 0usize;
        while base < dim {
            for i0 in base..base + bit {
                let i1 = i0 + bit;
                let a0 = amps[i0];
                let a1 = amps[i1];
                amps[i0] = d0 * a0 + zero_mul(a1);
                amps[i1] = zero_mul(a0) + d1 * a1;
            }
            base += 2 * bit;
        }
    }

    /// Pauli X on one qubit (row order of `gates::x()`).
    pub(super) fn perm_x(amps: &mut [C64], bit: usize) {
        let dim = amps.len();
        let mut base = 0usize;
        while base < dim {
            for i0 in base..base + bit {
                let i1 = i0 + bit;
                let a0 = amps[i0];
                let a1 = amps[i1];
                amps[i0] = zero_mul(a0) + one_mul(a1);
                amps[i1] = one_mul(a0) + zero_mul(a1);
            }
            base += 2 * bit;
        }
    }

    /// Walks every quad `(i0, i1, i2, i3) = (base, base|b1, base|b0,
    /// base|b0|b1)` and applies `f` to its four amplitudes.
    #[inline(always)]
    fn for_each_quad(amps: &mut [C64], b0: usize, b1: usize, mut f: impl FnMut(&mut [C64; 4])) {
        let dim = amps.len();
        let (bh, bl) = (b0.max(b1), b0.min(b1));
        let mut base_h = 0usize;
        while base_h < dim {
            let mut base_m = base_h;
            while base_m < base_h + bh {
                for low in base_m..base_m + bl {
                    let idx = [low, low | b1, low | b0, low | b0 | b1];
                    let mut a = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
                    f(&mut a);
                    amps[idx[0]] = a[0];
                    amps[idx[1]] = a[1];
                    amps[idx[2]] = a[2];
                    amps[idx[3]] = a[3];
                }
                base_m += 2 * bl;
            }
            base_h += 2 * bh;
        }
    }

    /// diag(d0, d1, d2, d3) on a qubit pair.
    pub(super) fn diag_2q(amps: &mut [C64], b0: usize, b1: usize, d: &[C64; 4]) {
        let d = *d;
        for_each_quad(amps, b0, b1, |a| {
            let out0 = (((ZERO + d[0] * a[0]) + zero_mul(a[1])) + zero_mul(a[2])) + zero_mul(a[3]);
            let out1 = (((ZERO + zero_mul(a[0])) + d[1] * a[1]) + zero_mul(a[2])) + zero_mul(a[3]);
            let out2 = (((ZERO + zero_mul(a[0])) + zero_mul(a[1])) + d[2] * a[2]) + zero_mul(a[3]);
            let out3 = (((ZERO + zero_mul(a[0])) + zero_mul(a[1])) + zero_mul(a[2])) + d[3] * a[3];
            *a = [out0, out1, out2, out3];
        });
    }

    /// CNOT (row order of `gates::cx()`: control is the `b0` operand).
    pub(super) fn perm_cx(amps: &mut [C64], b0: usize, b1: usize) {
        for_each_quad(amps, b0, b1, |a| {
            let out0 =
                (((ZERO + one_mul(a[0])) + zero_mul(a[1])) + zero_mul(a[2])) + zero_mul(a[3]);
            let out1 =
                (((ZERO + zero_mul(a[0])) + one_mul(a[1])) + zero_mul(a[2])) + zero_mul(a[3]);
            let out2 =
                (((ZERO + zero_mul(a[0])) + zero_mul(a[1])) + zero_mul(a[2])) + one_mul(a[3]);
            let out3 =
                (((ZERO + zero_mul(a[0])) + zero_mul(a[1])) + one_mul(a[2])) + zero_mul(a[3]);
            *a = [out0, out1, out2, out3];
        });
    }

    /// SWAP (row order of `gates::swap()`).
    pub(super) fn perm_swap(amps: &mut [C64], b0: usize, b1: usize) {
        for_each_quad(amps, b0, b1, |a| {
            let out0 =
                (((ZERO + one_mul(a[0])) + zero_mul(a[1])) + zero_mul(a[2])) + zero_mul(a[3]);
            let out1 =
                (((ZERO + zero_mul(a[0])) + zero_mul(a[1])) + one_mul(a[2])) + zero_mul(a[3]);
            let out2 =
                (((ZERO + zero_mul(a[0])) + one_mul(a[1])) + zero_mul(a[2])) + zero_mul(a[3]);
            let out3 =
                (((ZERO + zero_mul(a[0])) + zero_mul(a[1])) + zero_mul(a[2])) + one_mul(a[3]);
            *a = [out0, out1, out2, out3];
        });
    }
}

/// The pre-rewrite full-scan kernels, preserved verbatim.
///
/// These scan all `2^n` indices per gate and skip non-base indices, applying
/// the generic matrix product for every gate. They define the bitwise
/// reference semantics the rewritten engine must reproduce exactly, and they
/// are the "old" side of the `sim` tier in the perf harness.
pub mod reference {
    use super::*;

    /// Applies a single-qubit unitary with the pre-rewrite full-scan kernel.
    pub fn apply_1q(sv: &mut StateVector, m: &Matrix2, qubit: usize) {
        assert!(qubit < sv.num_qubits);
        let bit = 1usize << sv.bit_position(qubit);
        let dim = sv.amplitudes.len();
        for idx in 0..dim {
            if idx & bit != 0 {
                continue;
            }
            let i0 = idx;
            let i1 = idx | bit;
            let a0 = sv.amplitudes[i0];
            let a1 = sv.amplitudes[i1];
            sv.amplitudes[i0] = m[(0, 0)] * a0 + m[(0, 1)] * a1;
            sv.amplitudes[i1] = m[(1, 0)] * a0 + m[(1, 1)] * a1;
        }
    }

    /// Applies a two-qubit unitary with the pre-rewrite full-scan kernel.
    pub fn apply_2q(sv: &mut StateVector, m: &Matrix4, q0: usize, q1: usize) {
        assert!(q0 < sv.num_qubits && q1 < sv.num_qubits && q0 != q1);
        let b0 = 1usize << sv.bit_position(q0);
        let b1 = 1usize << sv.bit_position(q1);
        let dim = sv.amplitudes.len();
        for idx in 0..dim {
            if idx & b0 != 0 || idx & b1 != 0 {
                continue;
            }
            let i = [idx, idx | b1, idx | b0, idx | b0 | b1];
            let a = [
                sv.amplitudes[i[0]],
                sv.amplitudes[i[1]],
                sv.amplitudes[i[2]],
                sv.amplitudes[i[3]],
            ];
            for r in 0..4 {
                let mut acc = ZERO;
                for c in 0..4 {
                    acc += m[(r, c)] * a[c];
                }
                sv.amplitudes[i[r]] = acc;
            }
        }
    }

    /// Applies every instruction (then the global phase) with the
    /// pre-rewrite kernels.
    pub fn apply_circuit(sv: &mut StateVector, circuit: &Circuit) {
        assert_eq!(circuit.num_qubits(), sv.num_qubits);
        if circuit.global_phase() != 0.0 {
            let phase = C64::cis(circuit.global_phase());
            for amp in &mut sv.amplitudes {
                *amp *= phase;
            }
        }
        for inst in circuit.instructions() {
            match inst.gate.num_qubits() {
                1 => {
                    let m = inst.gate.matrix2().expect("1q matrix");
                    apply_1q(sv, &m, inst.qubits[0]);
                }
                2 => {
                    let m = inst.gate.matrix4().expect("2q matrix");
                    apply_2q(sv, &m, inst.qubits[0], inst.qubits[1]);
                }
                _ => unreachable!("only 1- and 2-qubit gates exist"),
            }
        }
    }

    /// Runs `circuit` on `|0…0⟩` with the pre-rewrite kernels.
    pub fn simulate(circuit: &Circuit) -> StateVector {
        let mut sv = StateVector::zero_state(circuit.num_qubits());
        apply_circuit(&mut sv, circuit);
        sv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    const TOL: f64 = 1e-10;

    fn bitwise_eq(a: &StateVector, b: &StateVector) -> bool {
        a.amplitudes()
            .iter()
            .zip(b.amplitudes().iter())
            .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
    }

    #[test]
    fn global_phase_multiplies_every_amplitude() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.add_global_phase(std::f64::consts::FRAC_PI_2);
        let sv = simulate(&c);
        // e^{iπ/2}·(1/√2) = i/√2 on both amplitudes.
        for idx in 0..2 {
            let amp = sv.amplitudes()[idx];
            assert!(amp.re.abs() < TOL, "amp[{idx}] = {amp:?}");
            assert!((amp.im - std::f64::consts::FRAC_1_SQRT_2).abs() < TOL);
        }
        // Probabilities (and fidelity against the unphased circuit) are
        // unchanged: the phase is unobservable.
        let mut plain = Circuit::new(1);
        plain.h(0);
        assert!((sv.fidelity(&simulate(&plain)) - 1.0).abs() < TOL);
    }

    #[test]
    fn zero_state_is_normalized() {
        let sv = StateVector::zero_state(3);
        assert!((sv.total_probability() - 1.0).abs() < TOL);
        assert!((sv.probability(0) - 1.0).abs() < TOL);
    }

    #[test]
    fn x_flips_the_addressed_qubit() {
        // X on qubit 0 of |00⟩ gives |10⟩ = index 2.
        let mut c = Circuit::new(2);
        c.x(0);
        let sv = simulate(&c);
        assert!((sv.probability(0b10) - 1.0).abs() < TOL);

        let mut c = Circuit::new(2);
        c.x(1);
        let sv = simulate(&c);
        assert!((sv.probability(0b01) - 1.0).abs() < TOL);
    }

    #[test]
    fn bell_state_from_h_cx() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let sv = simulate(&c);
        assert!((sv.probability(0b00) - 0.5).abs() < TOL);
        assert!((sv.probability(0b11) - 0.5).abs() < TOL);
        assert!(sv.probability(0b01) < TOL);
        assert!(sv.probability(0b10) < TOL);
    }

    #[test]
    fn ghz_state_probabilities() {
        let n = 5;
        let mut c = Circuit::new(n);
        c.h(0);
        for i in 0..n - 1 {
            c.cx(i, i + 1);
        }
        let sv = simulate(&c);
        assert!((sv.probability(0) - 0.5).abs() < TOL);
        assert!((sv.probability((1 << n) - 1) - 0.5).abs() < TOL);
    }

    #[test]
    fn swap_gate_exchanges_qubits() {
        let mut c = Circuit::new(2);
        c.x(0);
        c.swap(0, 1);
        let sv = simulate(&c);
        assert!((sv.probability(0b01) - 1.0).abs() < TOL);
    }

    #[test]
    fn circuit_equals_its_unitary_action() {
        // CX(0,1) applied via apply_2q vs via Gate matrix on a superposition.
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(1);
        c.push(Gate::CZ, &[0, 1]);
        let sv = simulate(&c);
        assert!((sv.total_probability() - 1.0).abs() < TOL);
        // All four basis states have probability 1/4 (CZ only adds phases).
        for idx in 0..4 {
            assert!((sv.probability(idx) - 0.25).abs() < TOL);
        }
    }

    #[test]
    fn unitarity_is_preserved_through_random_circuit() {
        let mut c = Circuit::new(4);
        c.h(0);
        c.cx(0, 1);
        c.push(Gate::SqrtISwap, &[1, 2]);
        c.push(Gate::Syc, &[2, 3]);
        c.rz(0.7, 3);
        c.push(Gate::RZZ(0.3), &[0, 3]);
        let sv = simulate(&c);
        assert!((sv.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_circuit_returns_to_zero() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.push(Gate::SqrtISwap, &[1, 2]);
        c.rz(0.9, 2);
        let mut full = c.clone();
        full.compose(&c.inverse());
        let sv = simulate(&full);
        assert!((sv.probability(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn permute_qubits_relabels_state() {
        // |10⟩ with permutation q0→q1, q1→q0 becomes |01⟩.
        let mut c = Circuit::new(2);
        c.x(0);
        let sv = simulate(&c);
        let permuted = sv.permute_qubits(&[1, 0]);
        assert!((permuted.probability(0b01) - 1.0).abs() < TOL);
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.cx(1, 2);
        let a = simulate(&c);
        let b = simulate(&c);
        assert!((a.fidelity(&b) - 1.0).abs() < TOL);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let zero = StateVector::zero_state(2);
        let mut c = Circuit::new(2);
        c.x(0);
        let one = simulate(&c);
        assert!(zero.fidelity(&one) < TOL);
    }

    #[test]
    fn swap_equivalence_with_permutation() {
        // Applying SWAP(0,1) is the same as relabelling the qubits.
        let mut base = Circuit::new(3);
        base.h(0);
        base.cx(0, 2);
        base.rz(0.4, 2);
        let mut swapped = base.clone();
        swapped.swap(0, 1);
        let sv_swapped = simulate(&swapped);
        let sv_base = simulate(&base);
        let undone = sv_swapped.permute_qubits(&[1, 0, 2]);
        assert!((sv_base.fidelity(&undone) - 1.0).abs() < 1e-9);
    }

    /// A gate zoo that exercises every kernel path: specialized diagonal,
    /// permutation, generic 1q, generic 2q (every qubit position so both
    /// scalar and AVX2 run lengths occur).
    fn kernel_zoo(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for q in 0..n {
            c.push(Gate::RZ(0.3 + q as f64), &[q]);
            c.push(Gate::T, &[q]);
            c.push(Gate::X, &[q]);
            c.push(Gate::RY(0.7 * (q + 1) as f64), &[q]);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
            c.push(Gate::CZ, &[q + 1, q]);
            c.push(Gate::RZZ(0.5 + q as f64), &[q, q + 1]);
            c.swap(q, q + 1);
            c.push(Gate::SqrtISwap, &[q, q + 1]);
        }
        c.push(Gate::Syc, &[0, n - 1]);
        c.push(Gate::CPhase(0.9), &[n - 1, 0]);
        c
    }

    #[test]
    fn new_engine_matches_reference_bitwise() {
        for n in [2, 3, 5, 6] {
            let c = kernel_zoo(n);
            let new = simulate(&c);
            let old = reference::simulate(&c);
            assert!(bitwise_eq(&new, &old), "mismatch at n = {n}");
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let c = kernel_zoo(6);
        let mut serial = StateVector::zero_state(6);
        serial.apply_circuit_mode(&c, ExecMode::Serial);
        let mut parallel = StateVector::zero_state(6);
        parallel.apply_circuit_mode(&c, ExecMode::Parallel);
        assert!(bitwise_eq(&serial, &parallel));
    }

    #[test]
    fn dense_cap_is_documented_constant() {
        assert_eq!(MAX_DENSE_QUBITS, 28);
        // Constructing at the cap would allocate 4 GiB; just check the
        // guard fires above it.
        let result = std::panic::catch_unwind(|| StateVector::zero_state(MAX_DENSE_QUBITS + 1));
        assert!(result.is_err());
    }
}
