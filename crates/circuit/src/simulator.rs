//! A small dense statevector simulator.
//!
//! The co-design study itself only needs structural circuit metrics, but a
//! simulator makes the rest of the stack testable: workload generators are
//! checked against known output states and the router's correctness is
//! verified by comparing statevectors before and after SWAP insertion (up to
//! the tracked qubit permutation). Intended for ≲ 20 qubits.

use crate::circuit::Circuit;
use snailqc_math::complex::{C64, ONE, ZERO};

/// A dense complex statevector over `n` qubits.
///
/// Qubit 0 is the most significant bit of the basis-state index, matching the
/// `|q0 q1 …⟩` labelling used by [`snailqc_math::gates`].
#[derive(Debug, Clone)]
pub struct StateVector {
    num_qubits: usize,
    amplitudes: Vec<C64>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= 26,
            "statevector simulator limited to 26 qubits"
        );
        let mut amplitudes = vec![ZERO; 1 << num_qubits];
        amplitudes[0] = ONE;
        Self {
            num_qubits,
            amplitudes,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude vector in computational-basis order.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amplitudes
    }

    /// The probability of measuring basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amplitudes[index].norm_sqr()
    }

    /// Sum of all probabilities (should be 1 for a normalized state).
    pub fn total_probability(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum()
    }

    /// `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits);
        let overlap: C64 = self
            .amplitudes
            .iter()
            .zip(other.amplitudes.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum();
        overlap.norm_sqr()
    }

    fn bit_position(&self, qubit: usize) -> usize {
        self.num_qubits - 1 - qubit
    }

    /// Applies a single-qubit unitary to `qubit`.
    pub fn apply_1q(&mut self, m: &snailqc_math::Matrix2, qubit: usize) {
        assert!(qubit < self.num_qubits);
        let bit = 1usize << self.bit_position(qubit);
        let dim = self.amplitudes.len();
        for idx in 0..dim {
            if idx & bit != 0 {
                continue;
            }
            let i0 = idx;
            let i1 = idx | bit;
            let a0 = self.amplitudes[i0];
            let a1 = self.amplitudes[i1];
            self.amplitudes[i0] = m[(0, 0)] * a0 + m[(0, 1)] * a1;
            self.amplitudes[i1] = m[(1, 0)] * a0 + m[(1, 1)] * a1;
        }
    }

    /// Applies a two-qubit unitary to `(q0, q1)` where `q0` is the most
    /// significant operand of the 4×4 matrix.
    pub fn apply_2q(&mut self, m: &snailqc_math::Matrix4, q0: usize, q1: usize) {
        assert!(q0 < self.num_qubits && q1 < self.num_qubits && q0 != q1);
        let b0 = 1usize << self.bit_position(q0);
        let b1 = 1usize << self.bit_position(q1);
        let dim = self.amplitudes.len();
        for idx in 0..dim {
            if idx & b0 != 0 || idx & b1 != 0 {
                continue;
            }
            let i = [idx, idx | b1, idx | b0, idx | b0 | b1];
            let a = [
                self.amplitudes[i[0]],
                self.amplitudes[i[1]],
                self.amplitudes[i[2]],
                self.amplitudes[i[3]],
            ];
            for r in 0..4 {
                let mut acc = ZERO;
                for c in 0..4 {
                    acc += m[(r, c)] * a[c];
                }
                self.amplitudes[i[r]] = acc;
            }
        }
    }

    /// Applies every instruction of `circuit` in order, then the circuit's
    /// global phase.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert_eq!(circuit.num_qubits(), self.num_qubits);
        if circuit.global_phase() != 0.0 {
            let phase = C64::cis(circuit.global_phase());
            for amp in &mut self.amplitudes {
                *amp *= phase;
            }
        }
        for inst in circuit.instructions() {
            match inst.gate.num_qubits() {
                1 => {
                    let m = inst.gate.matrix2().expect("1q matrix");
                    self.apply_1q(&m, inst.qubits[0]);
                }
                2 => {
                    let m = inst.gate.matrix4().expect("2q matrix");
                    self.apply_2q(&m, inst.qubits[0], inst.qubits[1]);
                }
                _ => unreachable!("only 1- and 2-qubit gates exist"),
            }
        }
    }

    /// Permutes the qubit labels: qubit `q` of the current state becomes
    /// qubit `perm[q]` of the returned state. Used to undo the layout
    /// permutation a router leaves behind.
    pub fn permute_qubits(&self, perm: &[usize]) -> StateVector {
        assert_eq!(perm.len(), self.num_qubits);
        let mut out = StateVector {
            num_qubits: self.num_qubits,
            amplitudes: vec![ZERO; self.amplitudes.len()],
        };
        for (idx, amp) in self.amplitudes.iter().enumerate() {
            let mut new_idx = 0usize;
            for (q, &target) in perm.iter().enumerate() {
                let bit = (idx >> self.bit_position(q)) & 1;
                if bit == 1 {
                    new_idx |= 1 << (self.num_qubits - 1 - target);
                }
            }
            out.amplitudes[new_idx] = *amp;
        }
        out
    }
}

/// Runs `circuit` on `|0…0⟩` and returns the final state.
pub fn simulate(circuit: &Circuit) -> StateVector {
    let mut sv = StateVector::zero_state(circuit.num_qubits());
    sv.apply_circuit(circuit);
    sv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    const TOL: f64 = 1e-10;

    #[test]
    fn global_phase_multiplies_every_amplitude() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.add_global_phase(std::f64::consts::FRAC_PI_2);
        let sv = simulate(&c);
        // e^{iπ/2}·(1/√2) = i/√2 on both amplitudes.
        for idx in 0..2 {
            let amp = sv.amplitudes()[idx];
            assert!(amp.re.abs() < TOL, "amp[{idx}] = {amp:?}");
            assert!((amp.im - std::f64::consts::FRAC_1_SQRT_2).abs() < TOL);
        }
        // Probabilities (and fidelity against the unphased circuit) are
        // unchanged: the phase is unobservable.
        let mut plain = Circuit::new(1);
        plain.h(0);
        assert!((sv.fidelity(&simulate(&plain)) - 1.0).abs() < TOL);
    }

    #[test]
    fn zero_state_is_normalized() {
        let sv = StateVector::zero_state(3);
        assert!((sv.total_probability() - 1.0).abs() < TOL);
        assert!((sv.probability(0) - 1.0).abs() < TOL);
    }

    #[test]
    fn x_flips_the_addressed_qubit() {
        // X on qubit 0 of |00⟩ gives |10⟩ = index 2.
        let mut c = Circuit::new(2);
        c.x(0);
        let sv = simulate(&c);
        assert!((sv.probability(0b10) - 1.0).abs() < TOL);

        let mut c = Circuit::new(2);
        c.x(1);
        let sv = simulate(&c);
        assert!((sv.probability(0b01) - 1.0).abs() < TOL);
    }

    #[test]
    fn bell_state_from_h_cx() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let sv = simulate(&c);
        assert!((sv.probability(0b00) - 0.5).abs() < TOL);
        assert!((sv.probability(0b11) - 0.5).abs() < TOL);
        assert!(sv.probability(0b01) < TOL);
        assert!(sv.probability(0b10) < TOL);
    }

    #[test]
    fn ghz_state_probabilities() {
        let n = 5;
        let mut c = Circuit::new(n);
        c.h(0);
        for i in 0..n - 1 {
            c.cx(i, i + 1);
        }
        let sv = simulate(&c);
        assert!((sv.probability(0) - 0.5).abs() < TOL);
        assert!((sv.probability((1 << n) - 1) - 0.5).abs() < TOL);
    }

    #[test]
    fn swap_gate_exchanges_qubits() {
        let mut c = Circuit::new(2);
        c.x(0);
        c.swap(0, 1);
        let sv = simulate(&c);
        assert!((sv.probability(0b01) - 1.0).abs() < TOL);
    }

    #[test]
    fn circuit_equals_its_unitary_action() {
        // CX(0,1) applied via apply_2q vs via Gate matrix on a superposition.
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(1);
        c.push(Gate::CZ, &[0, 1]);
        let sv = simulate(&c);
        assert!((sv.total_probability() - 1.0).abs() < TOL);
        // All four basis states have probability 1/4 (CZ only adds phases).
        for idx in 0..4 {
            assert!((sv.probability(idx) - 0.25).abs() < TOL);
        }
    }

    #[test]
    fn unitarity_is_preserved_through_random_circuit() {
        let mut c = Circuit::new(4);
        c.h(0);
        c.cx(0, 1);
        c.push(Gate::SqrtISwap, &[1, 2]);
        c.push(Gate::Syc, &[2, 3]);
        c.rz(0.7, 3);
        c.push(Gate::RZZ(0.3), &[0, 3]);
        let sv = simulate(&c);
        assert!((sv.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_circuit_returns_to_zero() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.push(Gate::SqrtISwap, &[1, 2]);
        c.rz(0.9, 2);
        let mut full = c.clone();
        full.compose(&c.inverse());
        let sv = simulate(&full);
        assert!((sv.probability(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn permute_qubits_relabels_state() {
        // |10⟩ with permutation q0→q1, q1→q0 becomes |01⟩.
        let mut c = Circuit::new(2);
        c.x(0);
        let sv = simulate(&c);
        let permuted = sv.permute_qubits(&[1, 0]);
        assert!((permuted.probability(0b01) - 1.0).abs() < TOL);
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.cx(1, 2);
        let a = simulate(&c);
        let b = simulate(&c);
        assert!((a.fidelity(&b) - 1.0).abs() < TOL);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let zero = StateVector::zero_state(2);
        let mut c = Circuit::new(2);
        c.x(0);
        let one = simulate(&c);
        assert!(zero.fidelity(&one) < TOL);
    }

    #[test]
    fn swap_equivalence_with_permutation() {
        // Applying SWAP(0,1) is the same as relabelling the qubits.
        let mut base = Circuit::new(3);
        base.h(0);
        base.cx(0, 2);
        base.rz(0.4, 2);
        let mut swapped = base.clone();
        swapped.swap(0, 1);
        let sv_swapped = simulate(&swapped);
        let sv_base = simulate(&base);
        let undone = sv_swapped.permute_qubits(&[1, 0, 2]);
        assert!((sv_base.fidelity(&undone) - 1.0).abs() < 1e-9);
    }
}
