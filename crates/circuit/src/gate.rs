//! The gate set understood by the circuit IR.
//!
//! The enum covers every gate emitted by the workload generators and every
//! native hardware basis gate studied in the paper (CNOT/CR, FSIM/SYC,
//! `ⁿ√iSWAP`), plus an arbitrary-unitary variant used by Quantum Volume
//! circuits and by basis translation.

use snailqc_math::gates as mat;
use snailqc_math::{Matrix2, Matrix4};

/// A quantum gate acting on one or two qubits.
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    // --- single-qubit gates -------------------------------------------------
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S.
    S,
    /// Inverse phase gate S†.
    Sdg,
    /// T gate.
    T,
    /// T† gate.
    Tdg,
    /// √X gate.
    SX,
    /// X rotation by the given angle.
    RX(f64),
    /// Y rotation by the given angle.
    RY(f64),
    /// Z rotation by the given angle.
    RZ(f64),
    /// Phase gate P(λ).
    P(f64),
    /// General single-qubit gate U3(θ, φ, λ).
    U3(f64, f64, f64),
    /// An arbitrary single-qubit unitary.
    Unitary1(Matrix2),

    // --- two-qubit gates ----------------------------------------------------
    /// CNOT; first operand is the control.
    CX,
    /// Controlled-Z.
    CZ,
    /// Controlled-phase CP(λ).
    CPhase(f64),
    /// SWAP gate (data movement, paper §2.4.3).
    Swap,
    /// Full iSWAP.
    ISwap,
    /// √iSWAP — the SNAIL's preferred basis gate.
    SqrtISwap,
    /// Fractional iSWAP power: `ISwapPow(t)` = `iSWAP^t`; `t = 1/n` is `ⁿ√iSWAP`.
    ISwapPow(f64),
    /// FSIM(θ, φ) (paper Eq. 6).
    Fsim(f64, f64),
    /// The Sycamore gate FSIM(π/2, π/6).
    Syc,
    /// Cross-resonance interaction ZX(θ) (paper Eq. 4).
    ZXInteraction(f64),
    /// ZZ rotation exp(-iθ Z⊗Z / 2).
    RZZ(f64),
    /// XX rotation exp(-iθ X⊗X / 2).
    RXX(f64),
    /// YY rotation exp(-iθ Y⊗Y / 2).
    RYY(f64),
    /// The canonical Weyl-chamber gate CAN(c1, c2, c3).
    Canonical(f64, f64, f64),
    /// An arbitrary two-qubit unitary (e.g. a Haar-random QV block).
    Unitary2(Matrix4),
}

impl Gate {
    /// Number of qubits the gate acts on (1 or 2).
    pub fn num_qubits(&self) -> usize {
        match self {
            Gate::I
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::SX
            | Gate::RX(_)
            | Gate::RY(_)
            | Gate::RZ(_)
            | Gate::P(_)
            | Gate::U3(..)
            | Gate::Unitary1(_) => 1,
            _ => 2,
        }
    }

    /// True for two-qubit gates.
    pub fn is_two_qubit(&self) -> bool {
        self.num_qubits() == 2
    }

    /// True for the explicit SWAP gate.
    pub fn is_swap(&self) -> bool {
        matches!(self, Gate::Swap)
    }

    /// A short lowercase mnemonic, stable across runs (used for op counting).
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::SX => "sx",
            Gate::RX(_) => "rx",
            Gate::RY(_) => "ry",
            Gate::RZ(_) => "rz",
            Gate::P(_) => "p",
            Gate::U3(..) => "u3",
            Gate::Unitary1(_) => "unitary1",
            Gate::CX => "cx",
            Gate::CZ => "cz",
            Gate::CPhase(_) => "cp",
            Gate::Swap => "swap",
            Gate::ISwap => "iswap",
            Gate::SqrtISwap => "siswap",
            Gate::ISwapPow(_) => "iswap_pow",
            Gate::Fsim(..) => "fsim",
            Gate::Syc => "syc",
            Gate::ZXInteraction(_) => "zx",
            Gate::RZZ(_) => "rzz",
            Gate::RXX(_) => "rxx",
            Gate::RYY(_) => "ryy",
            Gate::Canonical(..) => "can",
            Gate::Unitary2(_) => "unitary2",
        }
    }

    /// The 2×2 unitary of a single-qubit gate, or `None` for two-qubit gates.
    pub fn matrix2(&self) -> Option<Matrix2> {
        Some(match self {
            Gate::I => Matrix2::identity(),
            Gate::X => mat::x(),
            Gate::Y => mat::y(),
            Gate::Z => mat::z(),
            Gate::H => mat::h(),
            Gate::S => mat::s(),
            Gate::Sdg => mat::sdg(),
            Gate::T => mat::t(),
            Gate::Tdg => mat::tdg(),
            Gate::SX => mat::sx(),
            Gate::RX(t) => mat::rx(*t),
            Gate::RY(t) => mat::ry(*t),
            Gate::RZ(t) => mat::rz(*t),
            Gate::P(l) => mat::p(*l),
            Gate::U3(t, p, l) => mat::u3(*t, *p, *l),
            Gate::Unitary1(m) => *m,
            _ => return None,
        })
    }

    /// The 4×4 unitary of a two-qubit gate, or `None` for single-qubit gates.
    pub fn matrix4(&self) -> Option<Matrix4> {
        Some(match self {
            Gate::CX => mat::cx(),
            Gate::CZ => mat::cz(),
            Gate::CPhase(l) => mat::cphase(*l),
            Gate::Swap => mat::swap(),
            Gate::ISwap => mat::iswap(),
            Gate::SqrtISwap => mat::sqrt_iswap(),
            Gate::ISwapPow(t) => mat::iswap_pow(*t),
            Gate::Fsim(t, p) => mat::fsim(*t, *p),
            Gate::Syc => mat::syc(),
            Gate::ZXInteraction(t) => mat::zx(*t),
            Gate::RZZ(t) => mat::rzz(*t),
            Gate::RXX(t) => mat::rxx(*t),
            Gate::RYY(t) => mat::ryy(*t),
            Gate::Canonical(a, b, c) => mat::canonical(*a, *b, *c),
            Gate::Unitary2(m) => *m,
            _ => return None,
        })
    }

    /// The inverse gate.
    pub fn inverse(&self) -> Gate {
        match self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::SX => Gate::Unitary1(mat::sx().adjoint()),
            Gate::RX(t) => Gate::RX(-t),
            Gate::RY(t) => Gate::RY(-t),
            Gate::RZ(t) => Gate::RZ(-t),
            Gate::P(l) => Gate::P(-l),
            Gate::U3(..) | Gate::Unitary1(_) => {
                Gate::Unitary1(self.matrix2().expect("1q gate").adjoint())
            }
            Gate::CPhase(l) => Gate::CPhase(-l),
            Gate::ISwap
            | Gate::SqrtISwap
            | Gate::ISwapPow(_)
            | Gate::Fsim(..)
            | Gate::Syc
            | Gate::ZXInteraction(_)
            | Gate::RZZ(_)
            | Gate::RXX(_)
            | Gate::RYY(_)
            | Gate::Canonical(..)
            | Gate::Unitary2(_) => Gate::Unitary2(self.matrix4().expect("2q gate").adjoint()),
            // Self-inverse gates.
            Gate::I | Gate::X | Gate::Y | Gate::Z | Gate::H | Gate::CX | Gate::CZ | Gate::Swap => {
                self.clone()
            }
        }
    }

    /// True when the gate is a Clifford operation — it maps Pauli operators
    /// to Pauli operators under conjugation, so the stabilizer tableau engine
    /// in `snailqc-sim` can simulate it at kiloqubit scale.
    ///
    /// Parameterised rotations are Clifford exactly at multiples of π/2
    /// (`CPhase` only at multiples of π, `ISwapPow` at integer powers);
    /// angles are classified with [`snailqc_math::angles::half_pi_multiple`]
    /// under [`snailqc_math::angles::ANGLE_TOL`] so QASM-roundtripped π
    /// multiples still count. Gates whose Clifford-ness depends on a matrix
    /// decomposition (`U3`, `Fsim`, `Syc`, `Canonical`, `Unitary1/2`,
    /// `SqrtISwap`) are conservatively reported as non-Clifford.
    pub fn is_clifford(&self) -> bool {
        use snailqc_math::angles::{half_pi_multiple, integer_multiple, pi_multiple, ANGLE_TOL};
        match self {
            Gate::I
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::SX
            | Gate::CX
            | Gate::CZ
            | Gate::Swap
            | Gate::ISwap => true,
            Gate::RX(t) | Gate::RY(t) | Gate::RZ(t) | Gate::P(t) => {
                half_pi_multiple(*t, ANGLE_TOL).is_some()
            }
            Gate::RZZ(t) | Gate::RXX(t) | Gate::RYY(t) | Gate::ZXInteraction(t) => {
                half_pi_multiple(*t, ANGLE_TOL).is_some()
            }
            Gate::CPhase(l) => pi_multiple(*l, ANGLE_TOL).is_some(),
            Gate::ISwapPow(t) => integer_multiple(*t, ANGLE_TOL).is_some(),
            Gate::T
            | Gate::Tdg
            | Gate::U3(..)
            | Gate::Unitary1(_)
            | Gate::SqrtISwap
            | Gate::Fsim(..)
            | Gate::Syc
            | Gate::Canonical(..)
            | Gate::Unitary2(_) => false,
        }
    }

    /// True when the gate is symmetric under exchanging its two qubits
    /// (meaningless but `true` for single-qubit gates).
    pub fn is_symmetric(&self) -> bool {
        match self {
            Gate::CX | Gate::ZXInteraction(_) => false,
            Gate::Unitary2(m) => m.approx_eq(&m.reverse_qubits(), 1e-12),
            Gate::Canonical(..) => true,
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snailqc_math::Matrix4;

    #[test]
    fn arity_is_consistent_with_matrices() {
        let gates = [
            Gate::X,
            Gate::H,
            Gate::RZ(0.3),
            Gate::U3(0.1, 0.2, 0.3),
            Gate::CX,
            Gate::Swap,
            Gate::SqrtISwap,
            Gate::Syc,
            Gate::RZZ(0.5),
            Gate::Canonical(0.1, 0.05, 0.0),
        ];
        for g in gates {
            if g.num_qubits() == 1 {
                assert!(g.matrix2().is_some(), "{}", g.name());
                assert!(g.matrix4().is_none(), "{}", g.name());
            } else {
                assert!(g.matrix4().is_some(), "{}", g.name());
                assert!(g.matrix2().is_none(), "{}", g.name());
            }
        }
    }

    #[test]
    fn inverses_compose_to_identity() {
        let two_q = [
            Gate::CX,
            Gate::CZ,
            Gate::CPhase(0.4),
            Gate::Swap,
            Gate::ISwap,
            Gate::SqrtISwap,
            Gate::Syc,
            Gate::RZZ(1.3),
            Gate::Canonical(0.3, 0.2, 0.1),
        ];
        for g in two_q {
            let u = g.matrix4().unwrap();
            let v = g.inverse().matrix4().unwrap();
            assert!(
                (u * v).approx_eq(&Matrix4::identity(), 1e-9),
                "{}",
                g.name()
            );
        }
        let one_q = [
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::RX(0.7),
            Gate::U3(0.5, 0.2, 0.9),
        ];
        for g in one_q {
            let u = g.matrix2().unwrap();
            let v = g.inverse().matrix2().unwrap();
            assert!(
                (u * v).approx_eq(&snailqc_math::Matrix2::identity(), 1e-9),
                "{}",
                g.name()
            );
        }
    }

    #[test]
    fn symmetry_flags() {
        assert!(!Gate::CX.is_symmetric());
        assert!(Gate::CZ.is_symmetric());
        assert!(Gate::Swap.is_symmetric());
        assert!(Gate::SqrtISwap.is_symmetric());
    }

    #[test]
    fn swap_detection() {
        assert!(Gate::Swap.is_swap());
        assert!(!Gate::CX.is_swap());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Gate::CX.name(), "cx");
        assert_eq!(Gate::SqrtISwap.name(), "siswap");
        assert_eq!(Gate::Syc.name(), "syc");
        assert_eq!(Gate::Swap.name(), "swap");
    }
}
