//! # snailqc-circuit
//!
//! Quantum circuit intermediate representation for the `snailqc` workspace.
//!
//! The paper's evaluation (Fig. 10) is a pipeline of circuit-to-circuit
//! rewrites followed by structural measurements; this crate supplies the data
//! model those passes operate on:
//!
//! * [`gate::Gate`] — the gate set: standard 1Q gates, the paper's native 2Q
//!   bases (CNOT, FSIM/SYC, `ⁿ√iSWAP`), algorithm-level interactions
//!   (controlled-phase, `RZZ`, …) and arbitrary unitaries.
//! * [`circuit::Circuit`] — an ordered instruction list with the metrics the
//!   study reports: total / critical-path SWAP and 2Q gate counts, depths,
//!   ASAP layering, and interaction extraction.
//! * [`simulator::StateVector`] — a dense statevector simulator (up to
//!   [`simulator::MAX_DENSE_QUBITS`] qubits) with pair/quad-iteration and
//!   AVX2 kernels, used to check that generators and routing preserve
//!   circuit semantics.

#![warn(missing_docs)]

pub mod circuit;
pub mod gate;
pub mod simulator;

pub use circuit::{Circuit, Instruction};
pub use gate::Gate;
pub use simulator::{simulate, ExecMode, StateVector, MAX_DENSE_QUBITS};
