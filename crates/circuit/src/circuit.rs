//! The circuit container and its cost metrics.
//!
//! [`Circuit`] is an ordered list of [`Instruction`]s over a fixed-size qubit
//! register. Besides construction helpers it provides exactly the metrics the
//! paper's evaluation flow (Fig. 10) collects after each transpilation stage:
//! total gate counts, per-kind counts, and *critical-path* counts (the number
//! of gates of a given kind on the longest dependency chain, the paper's
//! proxy for circuit duration).

use crate::gate::Gate;
use std::collections::BTreeMap;

/// A gate applied to a specific set of qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The gate being applied.
    pub gate: Gate,
    /// Qubit operands; length matches `gate.num_qubits()`.
    pub qubits: Vec<usize>,
}

impl Instruction {
    /// Creates a new instruction.
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Self {
        debug_assert_eq!(gate.num_qubits(), qubits.len());
        Self { gate, qubits }
    }

    /// True for two-qubit instructions.
    pub fn is_two_qubit(&self) -> bool {
        self.gate.is_two_qubit()
    }
}

/// An ordered quantum circuit over `num_qubits` qubits.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Circuit {
    num_qubits: usize,
    instructions: Vec<Instruction>,
    global_phase: f64,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            instructions: Vec::new(),
            global_phase: 0.0,
        }
    }

    /// The register size.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The accumulated global phase φ: the circuit's unitary carries an
    /// overall factor `e^{iφ}`. Unobservable in any measurement, but tracked
    /// so OpenQASM 3 `gphase` statements round-trip exactly and controlled
    /// versions of phased gates stay well-defined.
    pub fn global_phase(&self) -> f64 {
        self.global_phase
    }

    /// Adds `delta` radians of global phase.
    pub fn add_global_phase(&mut self, delta: f64) {
        self.global_phase += delta;
    }

    /// The instruction list, in program order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True when the circuit has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends a gate on the given qubits.
    ///
    /// # Panics
    /// Panics if an operand is out of range, operands repeat, or the operand
    /// count does not match the gate arity.
    pub fn push(&mut self, gate: Gate, qubits: &[usize]) {
        assert_eq!(
            gate.num_qubits(),
            qubits.len(),
            "gate {} expects {} operand(s), got {}",
            gate.name(),
            gate.num_qubits(),
            qubits.len()
        );
        for &q in qubits {
            assert!(
                q < self.num_qubits,
                "qubit {q} out of range ({} qubits)",
                self.num_qubits
            );
        }
        if qubits.len() == 2 {
            assert_ne!(qubits[0], qubits[1], "two-qubit gate operands must differ");
        }
        self.instructions
            .push(Instruction::new(gate, qubits.to_vec()));
    }

    /// Appends an already-built instruction.
    pub fn push_instruction(&mut self, inst: Instruction) {
        let qubits: Vec<usize> = inst.qubits.clone();
        self.push(inst.gate, &qubits);
    }

    // --- ergonomic builders -------------------------------------------------

    /// Appends a Hadamard.
    pub fn h(&mut self, q: usize) {
        self.push(Gate::H, &[q]);
    }

    /// Appends a Pauli X.
    pub fn x(&mut self, q: usize) {
        self.push(Gate::X, &[q]);
    }

    /// Appends an RZ rotation.
    pub fn rz(&mut self, theta: f64, q: usize) {
        self.push(Gate::RZ(theta), &[q]);
    }

    /// Appends an RX rotation.
    pub fn rx(&mut self, theta: f64, q: usize) {
        self.push(Gate::RX(theta), &[q]);
    }

    /// Appends a CNOT with `control` and `target`.
    pub fn cx(&mut self, control: usize, target: usize) {
        self.push(Gate::CX, &[control, target]);
    }

    /// Appends a controlled-phase gate.
    pub fn cp(&mut self, lambda: f64, control: usize, target: usize) {
        self.push(Gate::CPhase(lambda), &[control, target]);
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.push(Gate::Swap, &[a, b]);
    }

    /// Appends an RZZ interaction.
    pub fn rzz(&mut self, theta: f64, a: usize, b: usize) {
        self.push(Gate::RZZ(theta), &[a, b]);
    }

    // --- composition --------------------------------------------------------

    /// Appends every instruction of `other` (registers must match).
    pub fn compose(&mut self, other: &Circuit) {
        assert_eq!(self.num_qubits, other.num_qubits, "register sizes differ");
        self.instructions.extend(other.instructions.iter().cloned());
        self.global_phase += other.global_phase;
    }

    /// Returns a new circuit with every qubit index `q` replaced by
    /// `mapping[q]`. The mapping must be a permutation-like injection into a
    /// register of `new_num_qubits` qubits.
    pub fn remap_qubits(&self, mapping: &[usize], new_num_qubits: usize) -> Circuit {
        assert_eq!(mapping.len(), self.num_qubits);
        let mut out = Circuit::new(new_num_qubits);
        out.global_phase = self.global_phase;
        for inst in &self.instructions {
            let qubits: Vec<usize> = inst.qubits.iter().map(|&q| mapping[q]).collect();
            out.push(inst.gate.clone(), &qubits);
        }
        out
    }

    /// The inverse circuit (every gate inverted, order reversed).
    pub fn inverse(&self) -> Circuit {
        let mut out = Circuit::new(self.num_qubits);
        out.global_phase = -self.global_phase;
        for inst in self.instructions.iter().rev() {
            out.push(inst.gate.inverse(), &inst.qubits);
        }
        out
    }

    // --- metrics -------------------------------------------------------------

    /// Counts instructions matching a predicate.
    pub fn count_where<F: Fn(&Instruction) -> bool>(&self, pred: F) -> usize {
        self.instructions.iter().filter(|i| pred(i)).count()
    }

    /// Total number of two-qubit gates.
    pub fn two_qubit_count(&self) -> usize {
        self.count_where(|i| i.is_two_qubit())
    }

    /// Total number of explicit SWAP gates.
    pub fn swap_count(&self) -> usize {
        self.count_where(|i| i.gate.is_swap())
    }

    /// True when every instruction is a Clifford gate (see
    /// [`Gate::is_clifford`]), so the circuit is exactly simulable by the
    /// stabilizer tableau engine regardless of qubit count.
    pub fn is_clifford(&self) -> bool {
        self.instructions.iter().all(|i| i.gate.is_clifford())
    }

    /// Gate-name histogram.
    pub fn gate_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for inst in &self.instructions {
            *counts.entry(inst.gate.name()).or_insert(0) += 1;
        }
        counts
    }

    /// Critical-path length counting only instructions for which `weight`
    /// returns a positive value; the result is the maximum, over all
    /// dependency chains, of the summed weights.
    ///
    /// With `weight = |_| 1.0` this is the ordinary circuit depth; with a
    /// filter selecting two-qubit gates it is the paper's "critical path 2Q
    /// count" / pulse-duration proxy.
    pub fn weighted_depth<F: Fn(&Instruction) -> f64>(&self, weight: F) -> f64 {
        let mut level = vec![0.0f64; self.num_qubits];
        for inst in &self.instructions {
            let w = weight(inst);
            let start = inst.qubits.iter().map(|&q| level[q]).fold(0.0f64, f64::max);
            let end = start + w;
            for &q in &inst.qubits {
                level[q] = end;
            }
        }
        level.into_iter().fold(0.0f64, f64::max)
    }

    /// Circuit depth counting every instruction as one time step.
    pub fn depth(&self) -> usize {
        self.weighted_depth(|_| 1.0).round() as usize
    }

    /// Critical-path count of two-qubit gates.
    pub fn two_qubit_depth(&self) -> usize {
        self.weighted_depth(|i| if i.is_two_qubit() { 1.0 } else { 0.0 })
            .round() as usize
    }

    /// Critical-path count of SWAP gates.
    pub fn swap_depth(&self) -> usize {
        self.weighted_depth(|i| if i.gate.is_swap() { 1.0 } else { 0.0 })
            .round() as usize
    }

    /// Groups instruction indices into ASAP layers (all instructions in a
    /// layer act on disjoint qubits and have all dependencies in earlier
    /// layers). Useful for visualisation and parallelism analysis.
    pub fn asap_layers(&self) -> Vec<Vec<usize>> {
        let mut level = vec![0usize; self.num_qubits];
        let mut layers: Vec<Vec<usize>> = Vec::new();
        for (idx, inst) in self.instructions.iter().enumerate() {
            let start = inst.qubits.iter().map(|&q| level[q]).max().unwrap_or(0);
            if layers.len() <= start {
                layers.resize_with(start + 1, Vec::new);
            }
            layers[start].push(idx);
            for &q in &inst.qubits {
                level[q] = start + 1;
            }
        }
        layers
    }

    /// The multiset of undirected qubit pairs touched by two-qubit gates, as
    /// sorted `(min, max)` tuples in program order. Used by routing tests to
    /// check interaction preservation.
    pub fn interaction_pairs(&self) -> Vec<(usize, usize)> {
        self.instructions
            .iter()
            .filter(|i| i.is_two_qubit())
            .map(|i| {
                let a = i.qubits[0];
                let b = i.qubits[1];
                (a.min(b), a.max(b))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for i in 0..n - 1 {
            c.cx(i, i + 1);
        }
        c
    }

    #[test]
    fn push_validates_operands() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        c.cx(0, 2);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn push_rejects_duplicate_operands() {
        let mut c = Circuit::new(2);
        c.cx(1, 1);
    }

    #[test]
    fn counts_and_depths_of_ghz() {
        let c = ghz(5);
        assert_eq!(c.two_qubit_count(), 4);
        assert_eq!(c.swap_count(), 0);
        // GHZ chain: H, then 4 serial CNOTs.
        assert_eq!(c.depth(), 5);
        assert_eq!(c.two_qubit_depth(), 4);
    }

    #[test]
    fn parallel_gates_share_a_layer() {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(2, 3); // disjoint: same layer
        c.cx(1, 2); // depends on both
        assert_eq!(c.depth(), 2);
        assert_eq!(c.two_qubit_depth(), 2);
        let layers = c.asap_layers();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0], vec![0, 1]);
        assert_eq!(layers[1], vec![2]);
    }

    #[test]
    fn weighted_depth_ignores_zero_weight_gates() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(0);
        c.cx(0, 1);
        c.h(1);
        // Only 2Q gates weighted: depth is 1 regardless of 1Q chains.
        assert_eq!(c.two_qubit_depth(), 1);
        assert_eq!(c.depth(), 4);
    }

    #[test]
    fn gate_counts_histogram() {
        let c = ghz(4);
        let counts = c.gate_counts();
        assert_eq!(counts["h"], 1);
        assert_eq!(counts["cx"], 3);
    }

    #[test]
    fn remap_preserves_structure() {
        let c = ghz(3);
        let remapped = c.remap_qubits(&[2, 0, 1], 4);
        assert_eq!(remapped.num_qubits(), 4);
        assert_eq!(remapped.instructions()[0].qubits, vec![2]);
        assert_eq!(remapped.instructions()[1].qubits, vec![2, 0]);
        assert_eq!(remapped.instructions()[2].qubits, vec![0, 1]);
    }

    #[test]
    fn compose_appends() {
        let mut a = ghz(3);
        let b = ghz(3);
        a.compose(&b);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn interaction_pairs_are_sorted_tuples() {
        let mut c = Circuit::new(3);
        c.cx(2, 0);
        c.swap(1, 2);
        assert_eq!(c.interaction_pairs(), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn inverse_reverses_order() {
        let c = ghz(3);
        let inv = c.inverse();
        assert_eq!(inv.len(), 3);
        assert_eq!(inv.instructions()[0].gate.name(), "cx");
        assert_eq!(inv.instructions()[2].gate.name(), "h");
    }

    #[test]
    fn global_phase_accumulates_and_flows_through_transforms() {
        let mut c = ghz(3);
        assert_eq!(c.global_phase(), 0.0);
        c.add_global_phase(0.5);
        c.add_global_phase(-0.2);
        assert!((c.global_phase() - 0.3).abs() < 1e-15);
        assert!((c.remap_qubits(&[2, 0, 1], 4).global_phase() - 0.3).abs() < 1e-15);
        assert!((c.inverse().global_phase() + 0.3).abs() < 1e-15);
        let mut other = ghz(3);
        other.add_global_phase(0.7);
        c.compose(&other);
        assert!((c.global_phase() - 1.0).abs() < 1e-15);
        // Phase participates in equality: two otherwise-identical circuits
        // with different phases are distinct.
        let mut a = ghz(2);
        let b = ghz(2);
        assert_eq!(a, b);
        a.add_global_phase(0.1);
        assert_ne!(a, b);
    }

    #[test]
    fn swap_depth_counts_only_swaps() {
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.swap(1, 2);
        c.swap(0, 1);
        assert_eq!(c.swap_count(), 2);
        assert_eq!(c.swap_depth(), 2);
        assert_eq!(c.two_qubit_depth(), 3);
    }
}
