//! Property-based tests for the circuit IR and the statevector simulator.

use proptest::prelude::*;
use snailqc_circuit::{simulate, Circuit, Gate, StateVector};

/// Strategy producing a random circuit on `n` qubits from a restricted but
/// representative gate alphabet.
fn arb_circuit(max_qubits: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    (
        2..=max_qubits,
        proptest::collection::vec((0..6u8, 0..1000u32, 0..1000u32, any::<f64>()), 1..max_gates),
    )
        .prop_map(|(n, ops)| {
            let mut c = Circuit::new(n);
            for (kind, a, b, angle) in ops {
                let q0 = a as usize % n;
                let mut q1 = b as usize % n;
                if q1 == q0 {
                    q1 = (q0 + 1) % n;
                }
                let theta = (angle % std::f64::consts::TAU).abs();
                match kind {
                    0 => c.h(q0),
                    1 => c.rz(theta, q0),
                    2 => c.rx(theta, q0),
                    3 => c.cx(q0, q1),
                    4 => c.push(Gate::SqrtISwap, &[q0, q1]),
                    _ => c.rzz(theta, q0, q1),
                }
            }
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn depth_never_exceeds_length(c in arb_circuit(6, 40)) {
        prop_assert!(c.depth() <= c.len());
        prop_assert!(c.two_qubit_depth() <= c.two_qubit_count());
        prop_assert!(c.swap_depth() <= c.swap_count());
    }

    #[test]
    fn two_qubit_metrics_are_consistent(c in arb_circuit(6, 40)) {
        prop_assert_eq!(c.interaction_pairs().len(), c.two_qubit_count());
        let counts = c.gate_counts();
        let total: usize = counts.values().sum();
        prop_assert_eq!(total, c.len());
    }

    #[test]
    fn asap_layers_partition_the_circuit(c in arb_circuit(6, 40)) {
        let layers = c.asap_layers();
        let covered: usize = layers.iter().map(|l| l.len()).sum();
        prop_assert_eq!(covered, c.len());
        prop_assert_eq!(layers.len(), c.depth());
        // Within a layer, no qubit is used twice.
        for layer in &layers {
            let mut seen = std::collections::HashSet::new();
            for &idx in layer {
                for &q in &c.instructions()[idx].qubits {
                    prop_assert!(seen.insert(q));
                }
            }
        }
    }

    #[test]
    fn compose_adds_counts(a in arb_circuit(5, 20), b in arb_circuit(5, 20)) {
        // Put both on the same register size before composing.
        let n = a.num_qubits().max(b.num_qubits());
        let a_big = a.remap_qubits(&(0..a.num_qubits()).collect::<Vec<_>>(), n);
        let b_big = b.remap_qubits(&(0..b.num_qubits()).collect::<Vec<_>>(), n);
        let mut combined = a_big.clone();
        combined.compose(&b_big);
        prop_assert_eq!(combined.len(), a_big.len() + b_big.len());
        prop_assert_eq!(
            combined.two_qubit_count(),
            a_big.two_qubit_count() + b_big.two_qubit_count()
        );
    }

    #[test]
    fn remap_is_reversible(c in arb_circuit(5, 25)) {
        let n = c.num_qubits();
        // A rotation permutation and its inverse.
        let fwd: Vec<usize> = (0..n).map(|q| (q + 1) % n).collect();
        let back: Vec<usize> = (0..n).map(|q| (q + n - 1) % n).collect();
        let round_trip = c.remap_qubits(&fwd, n).remap_qubits(&back, n);
        prop_assert_eq!(round_trip, c);
    }

    #[test]
    fn simulation_preserves_norm(c in arb_circuit(5, 30)) {
        let sv = simulate(&c);
        prop_assert!((sv.total_probability() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn circuit_then_inverse_is_identity(c in arb_circuit(5, 20)) {
        let mut round_trip = c.clone();
        round_trip.compose(&c.inverse());
        let sv = simulate(&round_trip);
        prop_assert!((sv.probability(0) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn permuting_qubits_preserves_probability_mass(c in arb_circuit(5, 20)) {
        let n = c.num_qubits();
        let sv = simulate(&c);
        let perm: Vec<usize> = (0..n).map(|q| (q + 1) % n).collect();
        let permuted = sv.permute_qubits(&perm);
        prop_assert!((permuted.total_probability() - 1.0).abs() < 1e-8);
        // The multiset of probabilities is unchanged.
        let mut a: Vec<f64> = (0..1 << n).map(|i| sv.probability(i)).collect();
        let mut b: Vec<f64> = (0..1 << n).map(|i| permuted.probability(i)).collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn fidelity_is_symmetric_and_bounded(a in arb_circuit(4, 15), b in arb_circuit(4, 15)) {
        let n = a.num_qubits().max(b.num_qubits());
        let sa = {
            let mut s = StateVector::zero_state(n);
            s.apply_circuit(&a.remap_qubits(&(0..a.num_qubits()).collect::<Vec<_>>(), n));
            s
        };
        let sb = {
            let mut s = StateVector::zero_state(n);
            s.apply_circuit(&b.remap_qubits(&(0..b.num_qubits()).collect::<Vec<_>>(), n));
            s
        };
        let f_ab = sa.fidelity(&sb);
        let f_ba = sb.fidelity(&sa);
        prop_assert!((f_ab - f_ba).abs() < 1e-9);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&f_ab));
    }
}
