//! Cross-engine agreement suite.
//!
//! Three independent implementations must agree wherever their domains
//! overlap:
//!
//! * the stabilizer tableau vs the dense simulator on random Clifford
//!   circuits (≤ 12 qubits): every canonical stabilizer generator must fix
//!   the dense state with the tracked sign;
//! * the rewritten dense kernels vs the preserved full-scan reference
//!   kernels on random mixed circuits (≤ 10 qubits): **bitwise** identical,
//!   in serial and forced-parallel execution;
//! * `verify_equivalent` vs the router on real devices: routed Clifford
//!   circuits prove equivalent, tampered ones are refuted, near-Clifford
//!   circuits pass Pauli spot checks.

use proptest::prelude::*;
use snailqc_circuit::simulator::reference;
use snailqc_circuit::{simulate, Circuit, ExecMode, Gate, StateVector};
use snailqc_math::complex::C64;
use snailqc_sim::{verify_equivalent, PauliString, Tableau, Verdict};
use snailqc_topology::builders;
use snailqc_transpiler::{route, LayoutStrategy, RouterConfig};
use snailqc_workloads::{clifford_qv, random_clifford_circuit};

fn bitwise_eq(a: &StateVector, b: &StateVector) -> bool {
    a.amplitudes()
        .iter()
        .zip(b.amplitudes().iter())
        .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}

/// Applies the Pauli string of canonical row `row` to `state` and checks
/// `P|ψ⟩ = (−1)^sign |ψ⟩` within `tol`.
fn row_stabilizes(
    row_src: &snailqc_sim::CanonicalForm,
    row: usize,
    state: &StateVector,
    tol: f64,
) -> bool {
    let n = row_src.num_qubits();
    let bitpos = |q: usize| n - 1 - q;
    // X-flip mask and per-index phase of the Pauli string.
    let mut xflip = 0usize;
    for q in 0..n {
        if row_src.x_bit(row, q) {
            xflip |= 1 << bitpos(q);
        }
    }
    let amps = state.amplitudes();
    let dim = amps.len();
    let global_sign = if row_src.sign_bit(row) { -1.0 } else { 1.0 };
    for idx in 0..dim {
        // phase accumulated applying P to basis state |idx⟩.
        let mut phase = C64 { re: 1.0, im: 0.0 };
        for q in 0..n {
            let bit = (idx >> bitpos(q)) & 1;
            match (row_src.x_bit(row, q), row_src.z_bit(row, q)) {
                (false, false) | (true, false) => {}
                (false, true) => {
                    if bit == 1 {
                        phase *= C64 { re: -1.0, im: 0.0 };
                    }
                }
                (true, true) => {
                    // Y = iXZ: |0⟩ → i|1⟩, |1⟩ → −i|0⟩.
                    phase *= if bit == 0 {
                        C64 { re: 0.0, im: 1.0 }
                    } else {
                        C64 { re: 0.0, im: -1.0 }
                    };
                }
            }
        }
        let out = phase * amps[idx];
        let expect = amps[idx ^ xflip];
        let diff_re = out.re - global_sign * expect.re;
        let diff_im = out.im - global_sign * expect.im;
        if diff_re.abs() > tol || diff_im.abs() > tol {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every canonical stabilizer generator of a random Clifford circuit
    /// fixes the dense statevector, sign included.
    #[test]
    fn tableau_stabilizes_the_dense_state(n in 2usize..=12, gates in 10usize..120, seed in 0u64..10_000) {
        let circuit = random_clifford_circuit(n, gates, seed);
        prop_assert!(circuit.is_clifford());
        let mut tab = Tableau::zero_state(n);
        tab.apply_circuit(&circuit).unwrap();
        let canon = tab.canonical_form();
        let state = simulate(&circuit);
        for row in 0..canon.num_rows() {
            prop_assert!(
                row_stabilizes(&canon, row, &state, 1e-8),
                "row {row} does not stabilize the dense state (n={n}, seed={seed})"
            );
        }
    }

    /// Clifford-QV agrees between engines too (denser two-qubit structure).
    #[test]
    fn clifford_qv_stabilizes_the_dense_state(n in 2usize..=10, seed in 0u64..2_000) {
        let circuit = clifford_qv(n, n.min(6), seed);
        let mut tab = Tableau::zero_state(n);
        tab.apply_circuit(&circuit).unwrap();
        let canon = tab.canonical_form();
        let state = simulate(&circuit);
        for row in 0..canon.num_rows() {
            prop_assert!(row_stabilizes(&canon, row, &state, 1e-8));
        }
    }

    /// The rewritten kernels reproduce the reference kernels bit for bit on
    /// random mixed (Clifford + non-Clifford) circuits, in every ExecMode.
    #[test]
    fn dense_kernels_match_reference_bitwise(n in 2usize..=10, seed in 0u64..10_000) {
        let circuit = mixed_circuit(n, 40, seed);
        let old = reference::simulate(&circuit);
        let new = simulate(&circuit);
        prop_assert!(bitwise_eq(&old, &new), "serial kernels drifted (n={n}, seed={seed})");
        let mut par = StateVector::zero_state(n);
        par.apply_circuit_mode(&circuit, ExecMode::Parallel);
        prop_assert!(bitwise_eq(&old, &par), "parallel kernels drifted (n={n}, seed={seed})");
    }

    /// Routed random Clifford circuits prove equivalent on real topologies.
    #[test]
    fn router_preserves_clifford_semantics(seed in 0u64..2_000, dev in 0usize..3) {
        let circuit = random_clifford_circuit(8, 40, seed);
        let graph = match dev {
            0 => builders::line(10),
            1 => builders::square_lattice(3, 4),
            _ => builders::hypercube(3),
        };
        let layout = LayoutStrategy::Dense.compute(&circuit, &graph);
        let routed = route(&circuit, &graph, &layout, &RouterConfig::deterministic(seed));
        let verdict = verify_equivalent(&circuit, &routed);
        prop_assert!(verdict.is_equivalent(), "{verdict} (seed={seed}, dev={dev})");
    }
}

/// Random mixed circuit drawing from every kernel class: specialized
/// diagonal/permutation, generic 1q, generic 2q (including Haar blocks).
fn mixed_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        let q = rng.gen_range(0..n);
        let mut p = rng.gen_range(0..n);
        if p == q {
            p = (q + 1) % n;
        }
        let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        match rng.gen_range(0..12) {
            0 => c.h(q),
            1 => c.push(Gate::T, &[q]),
            2 => c.rz(theta, q),
            3 => c.push(Gate::X, &[q]),
            4 => c.push(Gate::RY(theta), &[q]),
            5 => c.cx(q, p),
            6 => c.push(Gate::CZ, &[q, p]),
            7 => c.push(Gate::RZZ(theta), &[q, p]),
            8 => c.swap(q, p),
            9 => c.push(Gate::SqrtISwap, &[q, p]),
            10 => c.push(Gate::CPhase(theta), &[q, p]),
            _ => c.push(
                Gate::Unitary2(snailqc_math::random::haar_unitary4(&mut rng)),
                &[q, p],
            ),
        }
    }
    c
}

/// A tampered routed circuit is refuted by the stabilizer engine.
#[test]
fn stabilizer_engine_refutes_a_tampered_route() {
    let circuit = random_clifford_circuit(8, 40, 17);
    let graph = builders::square_lattice(3, 3);
    let layout = LayoutStrategy::Dense.compute(&circuit, &graph);
    let mut routed = route(&circuit, &graph, &layout, &RouterConfig::deterministic(17));
    assert!(verify_equivalent(&circuit, &routed).is_equivalent());
    // Corrupt the route: an extra H on an occupied wire rotates that
    // qubit's stabilizer components, changing the group.
    let occupied = routed.final_layout.physical(0);
    routed.circuit.push(Gate::H, &[occupied]);
    let verdict = verify_equivalent(&circuit, &routed);
    assert!(
        matches!(verdict, Verdict::NotEquivalent(_)),
        "tampered circuit not refuted: {verdict}"
    );
}

/// The dense engine handles non-Clifford circuits on small registers and
/// refutes tampering there too.
#[test]
fn dense_engine_verifies_and_refutes_non_clifford_routes() {
    let circuit = mixed_circuit(6, 30, 23);
    assert!(!circuit.is_clifford(), "want a non-Clifford sample");
    let graph = builders::line(8);
    let layout = LayoutStrategy::Dense.compute(&circuit, &graph);
    let mut routed = route(&circuit, &graph, &layout, &RouterConfig::deterministic(23));
    assert!(verify_equivalent(&circuit, &routed).is_equivalent());
    routed.circuit.push(Gate::X, &[0]);
    assert!(matches!(
        verify_equivalent(&circuit, &routed),
        Verdict::NotEquivalent(_)
    ));
}

/// Pauli spot checks on a large near-Clifford circuit: a Clifford core with
/// sprinkled T gates. Passing is Inconclusive by design; tampering with a
/// propagating path is refuted.
#[test]
fn pauli_spot_checks_catch_large_near_clifford_tampering() {
    let n = 40; // above DENSE_VERIFY_MAX_QUBITS, not Clifford → spot checks
    let mut circuit = random_clifford_circuit(n, 200, 31);
    circuit.push(Gate::T, &[0]);
    assert!(!circuit.is_clifford());
    let graph = builders::square_lattice(7, 7);
    let layout = LayoutStrategy::Dense.compute(&circuit, &graph);
    let routed = route(&circuit, &graph, &layout, &RouterConfig::deterministic(31));
    let verdict = verify_equivalent(&circuit, &routed);
    assert!(
        matches!(verdict, Verdict::Inconclusive(_)),
        "expected spot-check pass: {verdict}"
    );
    assert!(verdict.is_consistent());

    // Tamper: flip logical qubit 0's wire *before* the routed circuit runs.
    // The Z_0 probe anticommutes with the inserted X at time zero, so its
    // propagated sign differs and the spot checks must refute.
    let mut tampered = route(&circuit, &graph, &layout, &RouterConfig::deterministic(31));
    let mut prefixed = snailqc_circuit::Circuit::new(tampered.circuit.num_qubits());
    prefixed.push(Gate::X, &[tampered.initial_layout.physical(0)]);
    prefixed.compose(&tampered.circuit);
    tampered.circuit = prefixed;
    let verdict = verify_equivalent(&circuit, &tampered);
    assert!(
        matches!(verdict, Verdict::NotEquivalent(_)),
        "tampering slipped through: {verdict}"
    );
}

/// The Pauli engine and the tableau agree on Clifford conjugation.
#[test]
fn pauli_propagation_matches_tableau_on_cliffords() {
    let n = 10;
    let circuit = random_clifford_circuit(n, 80, 41);
    let mut tab = Tableau::zero_state(n);
    tab.apply_circuit(&circuit).unwrap();
    for q in 0..n {
        // Propagating Z_q through the circuit must reproduce tableau row q
        // (zero_state row q IS Z_q, and both use the same conjugation).
        let mut p = PauliString::z(n, q);
        p.apply_circuit(&circuit).unwrap();
        for col in 0..n {
            assert_eq!(p.x_bit(col), tab.x_bit(q, col), "x q={q} col={col}");
            assert_eq!(p.z_bit(col), tab.z_bit(q, col), "z q={q} col={col}");
        }
        assert_eq!(p.sign(), tab.sign_bit(q), "sign q={q}");
    }
}
