//! Kiloqubit Clifford equivalence suite.
//!
//! The headline capability of the stabilizer engine: prove that the router
//! preserves semantics on the catalog's largest cells — GHZ-625 on the
//! 25×25 grid and GHZ-1000 on the 10-dimensional hypercube (1024 physical
//! qubits) — sizes where dense simulation is out of the question by ~300
//! orders of magnitude. Each proof must land well inside the CI budget.

use snailqc_sim::{verify_equivalent, Verdict};
use snailqc_topology::builders;
use snailqc_transpiler::{dense_layout, route, RouterConfig};

fn verify_ghz_cell(graph: &snailqc_topology::CouplingGraph, qubits: usize) -> Verdict {
    let circuit = snailqc_workloads::ghz(qubits);
    let layout = dense_layout(&circuit, graph);
    let routed = route(&circuit, graph, &layout, &RouterConfig::default());
    assert!(routed.swap_count > 0, "kiloqubit routes must insert SWAPs");
    verify_equivalent(&circuit, &routed)
}

#[test]
fn routed_ghz_625_is_equivalent_on_the_grid() {
    let graph = builders::square_lattice(25, 25);
    let verdict = verify_ghz_cell(&graph, 625);
    assert!(verdict.is_equivalent(), "{verdict}");
}

#[test]
fn routed_ghz_1000_is_equivalent_on_the_hypercube() {
    let graph = builders::hypercube(10);
    let verdict = verify_ghz_cell(&graph, 1000);
    assert!(verdict.is_equivalent(), "{verdict}");
}

#[test]
fn kiloqubit_tampering_is_refuted() {
    // Same 625-qubit cell, with the routed circuit corrupted: the proof
    // machinery must be able to say "no" at scale, not just "yes".
    let graph = builders::square_lattice(25, 25);
    let circuit = snailqc_workloads::ghz(625);
    let layout = dense_layout(&circuit, &graph);
    let mut routed = route(&circuit, &graph, &layout, &RouterConfig::default());
    routed
        .circuit
        .push(snailqc_circuit::Gate::H, &[routed.final_layout.physical(0)]);
    let verdict = verify_equivalent(&circuit, &routed);
    assert!(
        matches!(verdict, Verdict::NotEquivalent(_)),
        "corrupted kiloqubit route not refuted: {verdict}"
    );
}
