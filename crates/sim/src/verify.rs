//! Routed-circuit equivalence checking.
//!
//! [`verify_equivalent`] proves (or refutes, or declines to decide) that a
//! routed circuit implements its source circuit up to the qubit permutation
//! recorded in the router's layouts. The engine is chosen by circuit class
//! and size:
//!
//! 1. **Stabilizer proof** — both circuits Clifford, any size: compare the
//!    canonical stabilizer groups of `U_routed |0^m⟩` and the source state
//!    embedded at the final layout. This is an exact proof and runs in
//!    seconds at 1024 qubits.
//! 2. **Dense proof** — any gates, at most [`DENSE_VERIFY_MAX_QUBITS`]
//!    physical qubits: simulate both statevectors and compare fidelity
//!    after undoing the layout permutation.
//! 3. **Pauli spot checks** — large non-Clifford circuits: propagate
//!    deterministic single-qubit Paulis through both circuits; a mismatch
//!    refutes equivalence, while all-pass is reported as
//!    [`Verdict::Inconclusive`] (it is a necessary condition, not a proof).

use crate::pauli::PauliString;
use crate::tableau::Tableau;
use snailqc_circuit::{simulate, Circuit};
use snailqc_obs as obs;
use snailqc_transpiler::RoutedCircuit;

/// Largest physical register the dense-statevector fallback will simulate.
pub const DENSE_VERIFY_MAX_QUBITS: usize = 16;

/// Number of logical qubits sampled (with both a `Z` and an `X` probe each)
/// by the Pauli spot-check engine.
pub const PAULI_SPOT_SAMPLES: usize = 16;

/// Outcome of [`verify_equivalent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Proven equivalent (stabilizer or dense engine).
    Equivalent,
    /// Proven *not* equivalent; the string says which check failed.
    NotEquivalent(String),
    /// Neither proven nor refuted (spot checks passed, or nothing could be
    /// checked); the string says what was tried.
    Inconclusive(String),
}

impl Verdict {
    /// True for [`Verdict::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Verdict::Equivalent)
    }

    /// True unless the verdict refutes equivalence — the right assertion
    /// for tests that accept a passed spot check.
    pub fn is_consistent(&self) -> bool {
        !matches!(self, Verdict::NotEquivalent(_))
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Equivalent => write!(f, "equivalent"),
            Verdict::NotEquivalent(d) => write!(f, "not equivalent: {d}"),
            Verdict::Inconclusive(d) => write!(f, "inconclusive: {d}"),
        }
    }
}

/// Checks that `routed` implements `source` up to the tracked layout
/// permutation, starting from `|0…0⟩`.
///
/// Dispatches to the stabilizer, dense, or Pauli spot-check engine as
/// described in the [module docs](self).
pub fn verify_equivalent(source: &Circuit, routed: &RoutedCircuit) -> Verdict {
    let _span = obs::span("sim.verify");
    if obs::is_enabled() {
        obs::counter_add("sim.verify_calls", 1);
    }
    let n = source.num_qubits();
    let m = routed.circuit.num_qubits();
    assert!(m >= n, "routed register smaller than the source register");
    let final_phys: Vec<usize> = (0..n).map(|q| routed.final_layout.physical(q)).collect();

    if source.is_clifford() && routed.circuit.is_clifford() {
        return stabilizer_verify(source, routed, &final_phys);
    }
    if m <= DENSE_VERIFY_MAX_QUBITS {
        return dense_verify(source, routed, m);
    }
    pauli_spot_checks(source, routed, &final_phys)
}

/// Exact stabilizer-group comparison (Clifford circuits, any size).
fn stabilizer_verify(source: &Circuit, routed: &RoutedCircuit, final_phys: &[usize]) -> Verdict {
    let m = routed.circuit.num_qubits();
    let mut actual = Tableau::zero_state(m);
    actual
        .apply_circuit(&routed.circuit)
        .expect("routed circuit checked Clifford");
    let mut logical = Tableau::zero_state(source.num_qubits());
    logical
        .apply_circuit(source)
        .expect("source circuit checked Clifford");
    let expected = logical.embed(final_phys, m);
    if expected.canonical_form() == actual.canonical_form() {
        Verdict::Equivalent
    } else {
        Verdict::NotEquivalent(format!(
            "stabilizer groups of the routed state and the layout-embedded source state \
             differ on the {m}-qubit register"
        ))
    }
}

/// Dense statevector comparison for small registers.
fn dense_verify(source: &Circuit, routed: &RoutedCircuit, m: usize) -> Verdict {
    let n = source.num_qubits();
    // Embed the source circuit on the full physical register size; qubits
    // n..m stay |0⟩ on both sides.
    let mut embedded = Circuit::new(m);
    embedded.add_global_phase(source.global_phase());
    for inst in source.instructions() {
        embedded.push_instruction(inst.clone());
    }
    let expected = simulate(&embedded);
    let actual = simulate(&routed.circuit);
    // Undo the layout: occupied physical p carries logical `logical(p)`;
    // unoccupied physicals (still |0⟩) fill the remaining slots in order.
    let mut perm = vec![0usize; m];
    let mut next_free = n;
    for (p, slot) in perm.iter_mut().enumerate() {
        *slot = match routed.final_layout.logical(p) {
            Some(q) => q,
            None => {
                let t = next_free;
                next_free += 1;
                t
            }
        };
    }
    let aligned = actual.permute_qubits(&perm);
    let fidelity = expected.fidelity(&aligned);
    if fidelity > 1.0 - 1e-9 {
        Verdict::Equivalent
    } else {
        Verdict::NotEquivalent(format!(
            "statevector fidelity {fidelity} after undoing the final layout"
        ))
    }
}

/// Pauli spot checks for large non-Clifford circuits.
///
/// For a logical Pauli `P`, `U_routed · E_i(P) · U_routed†` must equal
/// `E_f(U · P · U†)` where `E_i`/`E_f` embed at the initial/final layout.
/// Samples `Z_q` and `X_q` probes on evenly spread logical qubits.
fn pauli_spot_checks(source: &Circuit, routed: &RoutedCircuit, final_phys: &[usize]) -> Verdict {
    let n = source.num_qubits();
    let m = routed.circuit.num_qubits();
    let initial_phys: Vec<usize> = (0..n).map(|q| routed.initial_layout.physical(q)).collect();
    let samples = PAULI_SPOT_SAMPLES.min(n);
    let mut checked = 0usize;
    let mut obstructed = 0usize;
    for s in 0..samples {
        let q = s * n / samples;
        for probe in [PauliString::z, PauliString::x] {
            // Push the logical probe through the source circuit.
            let mut logical = probe(n, q);
            if logical.apply_circuit(source).is_err() {
                obstructed += 1;
                continue;
            }
            // Push its initial-layout embedding through the routed circuit.
            let mut physical = probe(n, q).embed(&initial_phys, m);
            if physical.apply_circuit(&routed.circuit).is_err() {
                obstructed += 1;
                continue;
            }
            let expected = logical.embed(final_phys, m);
            if physical != expected {
                return Verdict::NotEquivalent(format!(
                    "Pauli probe on logical qubit {q} propagates differently through the \
                     source and routed circuits"
                ));
            }
            checked += 1;
        }
    }
    if checked == 0 {
        Verdict::Inconclusive(format!(
            "all {obstructed} Pauli probes were obstructed by non-Clifford gates"
        ))
    } else {
        Verdict::Inconclusive(format!(
            "{checked} Pauli spot checks passed ({obstructed} obstructed); \
             necessary condition only, not a proof"
        ))
    }
}
