//! Bit-packed stabilizer tableau (Aaronson–Gottesman style).
//!
//! A [`Tableau`] tracks `r` stabilizer generators over `n` qubits. Storage is
//! **qubit-major**: for every qubit column `q` the X (resp. Z) components of
//! all rows are packed into `⌈r/64⌉` machine words, and the per-row sign bits
//! into one more such bitset. A Clifford gate touches one or two qubit
//! columns, so conjugating *every* generator through it costs `O(r/64)` word
//! operations — a 1024-qubit tableau pushes a gate through all 1024
//! generators in sixteen u64 ops.
//!
//! Group comparison goes through [`Tableau::canonical_form`], which
//! transposes to row-major Pauli strings and runs a GF(2) row-reduction with
//! word-level row multiplication (including the `i`-exponent bookkeeping for
//! signs). The reduced echelon form is unique for a given stabilizer group,
//! so two tableaus describe the same state iff their canonical forms are
//! bit-for-bit equal.

use snailqc_circuit::{Circuit, Gate};
use snailqc_math::angles::{half_pi_multiple, integer_multiple, pi_multiple, ANGLE_TOL};

/// Error returned when a circuit contains a gate outside the Clifford group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotClifford {
    /// Name of the offending gate.
    pub gate: &'static str,
}

impl std::fmt::Display for NotClifford {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gate {} is not a Clifford operation", self.gate)
    }
}

impl std::error::Error for NotClifford {}

/// A bit-packed stabilizer tableau: `num_rows` generators over `num_qubits`
/// qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tableau {
    num_qubits: usize,
    num_rows: usize,
    /// Words per row-bitset (`⌈num_rows/64⌉`).
    rw: usize,
    /// X components, qubit-major: column `q` occupies `x[q*rw..(q+1)*rw]`,
    /// bit `r` of the bitset is row `r`'s X component on qubit `q`.
    x: Vec<u64>,
    /// Z components, same layout as `x`.
    z: Vec<u64>,
    /// Sign bits: bit `r` set means generator `r` carries a −1 sign.
    signs: Vec<u64>,
}

impl Tableau {
    /// A tableau of `num_rows` identity rows (all-+1, no X/Z components).
    pub fn identity(num_qubits: usize, num_rows: usize) -> Self {
        let rw = num_rows.div_ceil(64).max(1);
        Self {
            num_qubits,
            num_rows,
            rw,
            x: vec![0; num_qubits * rw],
            z: vec![0; num_qubits * rw],
            signs: vec![0; rw],
        }
    }

    /// The stabilizer tableau of `|0…0⟩`: generator `i` is `Z_i`.
    pub fn zero_state(num_qubits: usize) -> Self {
        let mut t = Self::identity(num_qubits, num_qubits);
        for i in 0..num_qubits {
            t.set_z_bit(i, i, true);
        }
        t
    }

    /// Number of qubit columns.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of generator rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Row `row`'s X component on qubit `q`.
    pub fn x_bit(&self, row: usize, q: usize) -> bool {
        self.x[q * self.rw + row / 64] >> (row % 64) & 1 == 1
    }

    /// Row `row`'s Z component on qubit `q`.
    pub fn z_bit(&self, row: usize, q: usize) -> bool {
        self.z[q * self.rw + row / 64] >> (row % 64) & 1 == 1
    }

    /// Whether row `row` carries a −1 sign.
    pub fn sign_bit(&self, row: usize) -> bool {
        self.signs[row / 64] >> (row % 64) & 1 == 1
    }

    /// Sets row `row`'s X component on qubit `q`.
    pub fn set_x_bit(&mut self, row: usize, q: usize, v: bool) {
        let w = q * self.rw + row / 64;
        let b = 1u64 << (row % 64);
        if v {
            self.x[w] |= b;
        } else {
            self.x[w] &= !b;
        }
    }

    /// Sets row `row`'s Z component on qubit `q`.
    pub fn set_z_bit(&mut self, row: usize, q: usize, v: bool) {
        let w = q * self.rw + row / 64;
        let b = 1u64 << (row % 64);
        if v {
            self.z[w] |= b;
        } else {
            self.z[w] &= !b;
        }
    }

    /// Sets row `row`'s sign bit.
    pub fn set_sign_bit(&mut self, row: usize, v: bool) {
        let w = row / 64;
        let b = 1u64 << (row % 64);
        if v {
            self.signs[w] |= b;
        } else {
            self.signs[w] &= !b;
        }
    }

    // --- word-parallel single-column conjugation rules ----------------------
    //
    // Each rule updates all rows at once: `x`/`z` below are the 64-row word
    // blocks of the gate's qubit column(s), `r` the matching sign word.

    /// H: `r ^= x·z`, then swap the X and Z columns.
    fn h(&mut self, q: usize) {
        let o = q * self.rw;
        for w in 0..self.rw {
            self.signs[w] ^= self.x[o + w] & self.z[o + w];
            std::mem::swap(&mut self.x[o + w], &mut self.z[o + w]);
        }
    }

    /// S: `r ^= x·z; z ^= x`.
    fn s(&mut self, q: usize) {
        let o = q * self.rw;
        for w in 0..self.rw {
            self.signs[w] ^= self.x[o + w] & self.z[o + w];
            self.z[o + w] ^= self.x[o + w];
        }
    }

    /// S†: `r ^= x·!z; z ^= x`.
    fn sdg(&mut self, q: usize) {
        let o = q * self.rw;
        for w in 0..self.rw {
            self.signs[w] ^= self.x[o + w] & !self.z[o + w];
            self.z[o + w] ^= self.x[o + w];
        }
    }

    /// √X: `r ^= z·!x; x ^= z`.
    fn sx(&mut self, q: usize) {
        let o = q * self.rw;
        for w in 0..self.rw {
            self.signs[w] ^= self.z[o + w] & !self.x[o + w];
            self.x[o + w] ^= self.z[o + w];
        }
    }

    /// √X†: `r ^= x·z; x ^= z`.
    fn sxdg(&mut self, q: usize) {
        let o = q * self.rw;
        for w in 0..self.rw {
            self.signs[w] ^= self.x[o + w] & self.z[o + w];
            self.x[o + w] ^= self.z[o + w];
        }
    }

    /// RY(+π/2): `r ^= x·!z`, then swap X and Z.
    fn ry_pos(&mut self, q: usize) {
        let o = q * self.rw;
        for w in 0..self.rw {
            self.signs[w] ^= self.x[o + w] & !self.z[o + w];
            std::mem::swap(&mut self.x[o + w], &mut self.z[o + w]);
        }
    }

    /// RY(−π/2): `r ^= z·!x`, then swap X and Z.
    fn ry_neg(&mut self, q: usize) {
        let o = q * self.rw;
        for w in 0..self.rw {
            self.signs[w] ^= self.z[o + w] & !self.x[o + w];
            std::mem::swap(&mut self.x[o + w], &mut self.z[o + w]);
        }
    }

    /// Pauli X: `r ^= z`.
    fn px(&mut self, q: usize) {
        let o = q * self.rw;
        for w in 0..self.rw {
            self.signs[w] ^= self.z[o + w];
        }
    }

    /// Pauli Z: `r ^= x`.
    fn pz(&mut self, q: usize) {
        let o = q * self.rw;
        for w in 0..self.rw {
            self.signs[w] ^= self.x[o + w];
        }
    }

    /// Pauli Y: `r ^= x ^ z`.
    fn py(&mut self, q: usize) {
        let o = q * self.rw;
        for w in 0..self.rw {
            self.signs[w] ^= self.x[o + w] ^ self.z[o + w];
        }
    }

    /// CX(control `a`, target `b`):
    /// `r ^= x_a·z_b·!(x_b ^ z_a); x_b ^= x_a; z_a ^= z_b`.
    fn cx(&mut self, a: usize, b: usize) {
        let (oa, ob) = (a * self.rw, b * self.rw);
        for w in 0..self.rw {
            let xa = self.x[oa + w];
            let za = self.z[oa + w];
            let xb = self.x[ob + w];
            let zb = self.z[ob + w];
            self.signs[w] ^= xa & zb & !(xb ^ za);
            self.x[ob + w] = xb ^ xa;
            self.z[oa + w] = za ^ zb;
        }
    }

    /// exp(−iπ/2·Z⊗Z) up to phase, i.e. conjugation by `Z_a Z_b`:
    /// `r ^= x_a ^ x_b`.
    fn zz(&mut self, a: usize, b: usize) {
        let (oa, ob) = (a * self.rw, b * self.rw);
        for w in 0..self.rw {
            self.signs[w] ^= self.x[oa + w] ^ self.x[ob + w];
        }
    }

    /// SWAP: exchange both component columns.
    fn swap_qubits(&mut self, a: usize, b: usize) {
        let (oa, ob) = (a * self.rw, b * self.rw);
        for w in 0..self.rw {
            self.x.swap(oa + w, ob + w);
            self.z.swap(oa + w, ob + w);
        }
    }

    /// CZ = (I⊗H)·CX·(I⊗H).
    fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cx(a, b);
        self.h(b);
    }

    /// `RZZ(kπ/2)` for `k mod 4`: `I`, `CZ·(S⊗S)` (up to phase), `Z⊗Z`,
    /// or the inverse of the `k = 1` case.
    fn rzz_quarter(&mut self, k: i64, a: usize, b: usize) {
        match k.rem_euclid(4) {
            0 => {}
            1 => {
                self.cz(a, b);
                self.s(a);
                self.s(b);
            }
            2 => self.zz(a, b),
            _ => {
                self.cz(a, b);
                self.sdg(a);
                self.sdg(b);
            }
        }
    }

    /// iSWAP = SWAP·CZ·(S⊗S) (all factors exchange-symmetric, so order is
    /// free).
    fn iswap(&mut self, a: usize, b: usize) {
        self.swap_qubits(a, b);
        self.cz(a, b);
        self.s(a);
        self.s(b);
    }

    /// iSWAP† = (S†⊗S†)·CZ·SWAP.
    fn iswap_dg(&mut self, a: usize, b: usize) {
        self.sdg(b);
        self.sdg(a);
        self.cz(a, b);
        self.swap_qubits(a, b);
    }

    /// Conjugates every generator through `gate` on `qubits`.
    ///
    /// Returns [`NotClifford`] when the gate (at its parameter value) lies
    /// outside the Clifford group; the tableau is left unchanged in that
    /// case.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), NotClifford> {
        let err = || NotClifford { gate: gate.name() };
        match gate {
            Gate::I => {}
            Gate::X => self.px(qubits[0]),
            Gate::Y => self.py(qubits[0]),
            Gate::Z => self.pz(qubits[0]),
            Gate::H => self.h(qubits[0]),
            Gate::S => self.s(qubits[0]),
            Gate::Sdg => self.sdg(qubits[0]),
            Gate::SX => self.sx(qubits[0]),
            Gate::RX(t) => {
                let k = half_pi_multiple(*t, ANGLE_TOL).ok_or_else(err)?;
                match k.rem_euclid(4) {
                    0 => {}
                    1 => self.sx(qubits[0]),
                    2 => self.px(qubits[0]),
                    _ => self.sxdg(qubits[0]),
                }
            }
            Gate::RY(t) => {
                let k = half_pi_multiple(*t, ANGLE_TOL).ok_or_else(err)?;
                match k.rem_euclid(4) {
                    0 => {}
                    1 => self.ry_pos(qubits[0]),
                    2 => self.py(qubits[0]),
                    _ => self.ry_neg(qubits[0]),
                }
            }
            Gate::RZ(t) | Gate::P(t) => {
                let k = half_pi_multiple(*t, ANGLE_TOL).ok_or_else(err)?;
                match k.rem_euclid(4) {
                    0 => {}
                    1 => self.s(qubits[0]),
                    2 => self.pz(qubits[0]),
                    _ => self.sdg(qubits[0]),
                }
            }
            Gate::CX => self.cx(qubits[0], qubits[1]),
            Gate::CZ => self.cz(qubits[0], qubits[1]),
            Gate::CPhase(l) => {
                let k = pi_multiple(*l, ANGLE_TOL).ok_or_else(err)?;
                if k.rem_euclid(2) == 1 {
                    self.cz(qubits[0], qubits[1]);
                }
            }
            Gate::Swap => self.swap_qubits(qubits[0], qubits[1]),
            Gate::ISwap => self.iswap(qubits[0], qubits[1]),
            Gate::ISwapPow(t) => {
                let k = integer_multiple(*t, ANGLE_TOL).ok_or_else(err)?;
                match k.rem_euclid(4) {
                    0 => {}
                    1 => self.iswap(qubits[0], qubits[1]),
                    2 => self.zz(qubits[0], qubits[1]),
                    _ => self.iswap_dg(qubits[0], qubits[1]),
                }
            }
            Gate::RZZ(t) => {
                let k = half_pi_multiple(*t, ANGLE_TOL).ok_or_else(err)?;
                self.rzz_quarter(k, qubits[0], qubits[1]);
            }
            Gate::RXX(t) => {
                // XX = (H⊗H)·ZZ·(H⊗H).
                let k = half_pi_multiple(*t, ANGLE_TOL).ok_or_else(err)?;
                let (a, b) = (qubits[0], qubits[1]);
                self.h(a);
                self.h(b);
                self.rzz_quarter(k, a, b);
                self.h(a);
                self.h(b);
            }
            Gate::RYY(t) => {
                // Y = V Z V† with V = S·H, so YY rotations conjugate the ZZ
                // rotation by V⊗V: circuit [S†, H] … ZZ … [H, S] per qubit.
                let k = half_pi_multiple(*t, ANGLE_TOL).ok_or_else(err)?;
                let (a, b) = (qubits[0], qubits[1]);
                self.sdg(a);
                self.sdg(b);
                self.h(a);
                self.h(b);
                self.rzz_quarter(k, a, b);
                self.h(a);
                self.s(a);
                self.h(b);
                self.s(b);
            }
            Gate::ZXInteraction(t) => {
                // ZX = (I⊗H)·ZZ·(I⊗H).
                let k = half_pi_multiple(*t, ANGLE_TOL).ok_or_else(err)?;
                let (a, b) = (qubits[0], qubits[1]);
                self.h(b);
                self.rzz_quarter(k, a, b);
                self.h(b);
            }
            Gate::T
            | Gate::Tdg
            | Gate::U3(..)
            | Gate::Unitary1(_)
            | Gate::SqrtISwap
            | Gate::Fsim(..)
            | Gate::Syc
            | Gate::Canonical(..)
            | Gate::Unitary2(_) => return Err(err()),
        }
        Ok(())
    }

    /// Conjugates every generator through the whole circuit in order.
    /// The global phase is unobservable in the stabilizer formalism and is
    /// ignored.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), NotClifford> {
        assert_eq!(circuit.num_qubits(), self.num_qubits);
        for inst in circuit.instructions() {
            self.apply_gate(&inst.gate, &inst.qubits)?;
        }
        Ok(())
    }

    /// Embeds an `n`-qubit *state* tableau (`num_rows == num_qubits`) into a
    /// larger `num_physical`-qubit register: logical qubit `q` lands on
    /// physical qubit `phys_of[q]`, and every unoccupied physical qubit gets
    /// a fresh `Z_p` generator (it is in `|0⟩`).
    pub fn embed(&self, phys_of: &[usize], num_physical: usize) -> Tableau {
        assert_eq!(
            self.num_rows, self.num_qubits,
            "embed expects a state tableau"
        );
        assert_eq!(phys_of.len(), self.num_qubits);
        assert!(num_physical >= self.num_qubits);
        let mut out = Tableau::identity(num_physical, num_physical);
        let mut occupied = vec![false; num_physical];
        for (q, &p) in phys_of.iter().enumerate() {
            assert!(!occupied[p], "phys_of is not injective");
            occupied[p] = true;
            for w in 0..self.rw {
                out.x[p * out.rw + w] = self.x[q * self.rw + w];
                out.z[p * out.rw + w] = self.z[q * self.rw + w];
            }
        }
        out.signs[..self.rw].copy_from_slice(&self.signs);
        let mut row = self.num_rows;
        for (p, occ) in occupied.iter().enumerate() {
            if !occ {
                out.set_z_bit(row, p, true);
                row += 1;
            }
        }
        debug_assert_eq!(row, num_physical);
        out
    }

    /// The unique reduced-echelon canonical form of the generated group.
    pub fn canonical_form(&self) -> CanonicalForm {
        let mut c = CanonicalForm::transpose_of(self);
        c.reduce();
        c
    }
}

/// Row-major reduced echelon form of a stabilizer group, unique per group.
///
/// Two tableaus generate the same stabilizer group — i.e. describe the same
/// state — iff their canonical forms compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalForm {
    num_qubits: usize,
    num_rows: usize,
    /// Words per row over qubit columns (`⌈num_qubits/64⌉`).
    wq: usize,
    /// X components, row-major: row `r` occupies `x[r*wq..(r+1)*wq]`.
    x: Vec<u64>,
    z: Vec<u64>,
    signs: Vec<u64>,
}

impl CanonicalForm {
    fn transpose_of(t: &Tableau) -> Self {
        let wq = t.num_qubits.div_ceil(64).max(1);
        let mut c = CanonicalForm {
            num_qubits: t.num_qubits,
            num_rows: t.num_rows,
            wq,
            x: vec![0; t.num_rows * wq],
            z: vec![0; t.num_rows * wq],
            signs: t.signs.clone(),
        };
        for q in 0..t.num_qubits {
            let (w, b) = (q / 64, 1u64 << (q % 64));
            for rword in 0..t.rw {
                let mut xs = t.x[q * t.rw + rword];
                while xs != 0 {
                    let r = rword * 64 + xs.trailing_zeros() as usize;
                    c.x[r * wq + w] |= b;
                    xs &= xs - 1;
                }
                let mut zs = t.z[q * t.rw + rword];
                while zs != 0 {
                    let r = rword * 64 + zs.trailing_zeros() as usize;
                    c.z[r * wq + w] |= b;
                    zs &= zs - 1;
                }
            }
        }
        c
    }

    /// Number of generator rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Row `row`'s X component on qubit `q`.
    pub fn x_bit(&self, row: usize, q: usize) -> bool {
        self.x[row * self.wq + q / 64] >> (q % 64) & 1 == 1
    }

    /// Row `row`'s Z component on qubit `q`.
    pub fn z_bit(&self, row: usize, q: usize) -> bool {
        self.z[row * self.wq + q / 64] >> (q % 64) & 1 == 1
    }

    /// Whether row `row` carries a −1 sign.
    pub fn sign_bit(&self, row: usize) -> bool {
        self.signs[row / 64] >> (row % 64) & 1 == 1
    }

    fn set_sign_bit(&mut self, row: usize, v: bool) {
        let w = row / 64;
        let b = 1u64 << (row % 64);
        if v {
            self.signs[w] |= b;
        } else {
            self.signs[w] &= !b;
        }
    }

    fn swap_rows(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        for w in 0..self.wq {
            self.x.swap(i * self.wq + w, j * self.wq + w);
            self.z.swap(i * self.wq + w, j * self.wq + w);
        }
        let (si, sj) = (self.sign_bit(i), self.sign_bit(j));
        self.set_sign_bit(i, sj);
        self.set_sign_bit(j, si);
    }

    /// Replaces row `i` with the Pauli product `row_i · row_j` (word-level),
    /// tracking the sign through the per-qubit `i`-exponent bookkeeping.
    /// The rows of a stabilizer tableau commute, so the product order is
    /// immaterial and the accumulated exponent is always even.
    fn row_mult(&mut self, i: usize, j: usize) {
        let (oi, oj) = (i * self.wq, j * self.wq);
        let mut exponent: i64 = 0;
        for w in 0..self.wq {
            let x1 = self.x[oi + w];
            let z1 = self.z[oi + w];
            let x2 = self.x[oj + w];
            let z2 = self.z[oj + w];
            // Per-qubit phase of σ₁·σ₂: +i on (Y·Z, X·Y, Z·X), −i on the
            // transposes, ±1 otherwise.
            let plus = (x1 & z1 & z2 & !x2) | (x1 & !z1 & x2 & z2) | (!x1 & z1 & x2 & !z2);
            let minus = (x1 & z1 & x2 & !z2) | (x1 & !z1 & z2 & !x2) | (!x1 & z1 & x2 & z2);
            exponent += plus.count_ones() as i64 - minus.count_ones() as i64;
            self.x[oi + w] = x1 ^ x2;
            self.z[oi + w] = z1 ^ z2;
        }
        let t = exponent.rem_euclid(4);
        debug_assert_eq!(t % 2, 0, "multiplied anticommuting rows");
        let sign = self.sign_bit(i) ^ self.sign_bit(j) ^ (t == 2);
        self.set_sign_bit(i, sign);
    }

    /// Full Gauss–Jordan reduction over GF(2), pivoting on the X block
    /// first, then the Z block. Eliminating above *and* below each pivot
    /// makes the result unique for the row space, and the sign bookkeeping
    /// in [`Self::row_mult`] makes the sign column unique too.
    fn reduce(&mut self) {
        let mut pivot = 0usize;
        for col in 0..2 * self.num_qubits {
            if pivot == self.num_rows {
                break;
            }
            let (block_x, q) = if col < self.num_qubits {
                (true, col)
            } else {
                (false, col - self.num_qubits)
            };
            let (w, b) = (q / 64, 1u64 << (q % 64));
            let bit = |arr: &[u64], r: usize, wq: usize| arr[r * wq + w] & b != 0;
            let arr = if block_x { &self.x } else { &self.z };
            let Some(r) = (pivot..self.num_rows).find(|&r| bit(arr, r, self.wq)) else {
                continue;
            };
            self.swap_rows(r, pivot);
            for i in 0..self.num_rows {
                let arr = if block_x { &self.x } else { &self.z };
                if i != pivot && bit(arr, i, self.wq) {
                    self.row_mult(i, pivot);
                }
            }
            pivot += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Renders row `r` as a Pauli string for debugging/assertions.
    fn row_string(t: &Tableau, r: usize) -> String {
        let mut s = String::from(if t.sign_bit(r) { "-" } else { "+" });
        for q in 0..t.num_qubits() {
            s.push(match (t.x_bit(r, q), t.z_bit(r, q)) {
                (false, false) => 'I',
                (true, false) => 'X',
                (false, true) => 'Z',
                (true, true) => 'Y',
            });
        }
        s
    }

    #[test]
    fn zero_state_is_all_z() {
        let t = Tableau::zero_state(3);
        assert_eq!(row_string(&t, 0), "+ZII");
        assert_eq!(row_string(&t, 1), "+IZI");
        assert_eq!(row_string(&t, 2), "+IIZ");
    }

    #[test]
    fn x_gate_flips_z_sign() {
        // X|0⟩ = |1⟩, stabilized by −Z.
        let mut t = Tableau::zero_state(1);
        t.apply_gate(&Gate::X, &[0]).unwrap();
        assert_eq!(row_string(&t, 0), "-Z");
    }

    #[test]
    fn hadamard_turns_z_into_x() {
        let mut t = Tableau::zero_state(1);
        t.apply_gate(&Gate::H, &[0]).unwrap();
        assert_eq!(row_string(&t, 0), "+X");
    }

    #[test]
    fn bell_state_stabilizers() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let mut t = Tableau::zero_state(2);
        t.apply_circuit(&c).unwrap();
        assert_eq!(row_string(&t, 0), "+XX");
        assert_eq!(row_string(&t, 1), "+ZZ");
    }

    #[test]
    fn s_gate_sends_x_to_y() {
        let mut t = Tableau::zero_state(1);
        t.apply_gate(&Gate::H, &[0]).unwrap();
        t.apply_gate(&Gate::S, &[0]).unwrap();
        assert_eq!(row_string(&t, 0), "+Y");
        t.apply_gate(&Gate::S, &[0]).unwrap();
        assert_eq!(row_string(&t, 0), "-X");
    }

    #[test]
    fn non_clifford_gate_is_rejected() {
        let mut t = Tableau::zero_state(1);
        let err = t.apply_gate(&Gate::T, &[0]).unwrap_err();
        assert_eq!(err.gate, "t");
        let err = t.apply_gate(&Gate::RZ(0.3), &[0]).unwrap_err();
        assert_eq!(err.gate, "rz");
        // The Clifford angle is accepted.
        t.apply_gate(&Gate::RZ(std::f64::consts::FRAC_PI_2), &[0])
            .unwrap();
    }

    #[test]
    fn canonical_form_identifies_equal_groups() {
        // {+XX, +ZZ} and {+ZZ, −YY} generate the same Bell-state group.
        let mut c1 = Circuit::new(2);
        c1.h(0);
        c1.cx(0, 1);
        let mut t1 = Tableau::zero_state(2);
        t1.apply_circuit(&c1).unwrap();

        // Same state built the other way around.
        let mut c2 = Circuit::new(2);
        c2.h(1);
        c2.cx(1, 0);
        let mut t2 = Tableau::zero_state(2);
        t2.apply_circuit(&c2).unwrap();

        assert_ne!(t1, t2, "generator sets differ");
        assert_eq!(t1.canonical_form(), t2.canonical_form(), "groups agree");
    }

    #[test]
    fn canonical_form_distinguishes_sign() {
        // |Φ+⟩ vs |Φ−⟩: same generators up to one sign.
        let mut plus = Circuit::new(2);
        plus.h(0);
        plus.cx(0, 1);
        let mut minus = plus.clone();
        minus.push(Gate::Z, &[0]);
        let mut tp = Tableau::zero_state(2);
        tp.apply_circuit(&plus).unwrap();
        let mut tm = Tableau::zero_state(2);
        tm.apply_circuit(&minus).unwrap();
        assert_ne!(tp.canonical_form(), tm.canonical_form());
    }

    #[test]
    fn embed_places_logical_qubits_and_pads_zeros() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let mut t = Tableau::zero_state(2);
        t.apply_circuit(&c).unwrap();
        // Logical 0 → physical 3, logical 1 → physical 1 of a 4-qubit device.
        let e = t.embed(&[3, 1], 4);
        assert_eq!(e.num_qubits(), 4);
        assert_eq!(row_string(&e, 0), "+IXIX");
        assert_eq!(row_string(&e, 1), "+IZIZ");
        // Padding rows stabilize the unoccupied physicals 0 and 2.
        assert_eq!(row_string(&e, 2), "+ZIII");
        assert_eq!(row_string(&e, 3), "+IIZI");
    }

    #[test]
    fn swap_equals_three_cx() {
        let mut direct = Tableau::zero_state(3);
        let mut via_cx = Tableau::zero_state(3);
        // Start from a non-trivial state.
        let mut prep = Circuit::new(3);
        prep.h(0);
        prep.cx(0, 1);
        prep.push(Gate::S, &[2]);
        prep.h(2);
        direct.apply_circuit(&prep).unwrap();
        via_cx.apply_circuit(&prep).unwrap();
        direct.apply_gate(&Gate::Swap, &[0, 2]).unwrap();
        for (a, b) in [(0, 2), (2, 0), (0, 2)] {
            via_cx.apply_gate(&Gate::CX, &[a, b]).unwrap();
        }
        assert_eq!(direct.canonical_form(), via_cx.canonical_form());
    }

    #[test]
    fn large_tableau_round_trips_more_than_64_rows() {
        // Exercise multi-word row bitsets: GHZ on 130 qubits.
        let n = 130;
        let mut c = Circuit::new(n);
        c.h(0);
        for i in 0..n - 1 {
            c.cx(i, i + 1);
        }
        let mut t = Tableau::zero_state(n);
        t.apply_circuit(&c).unwrap();
        // The canonical form is idempotent and self-equal.
        let c1 = t.canonical_form();
        assert_eq!(c1, t.canonical_form());
        // Undo the circuit: back to |0…0⟩.
        t.apply_circuit(&c.inverse()).unwrap();
        assert_eq!(
            t.canonical_form(),
            Tableau::zero_state(n).canonical_form(),
            "inverse did not return to the zero state"
        );
    }
}
