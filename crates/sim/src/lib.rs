//! # snailqc-sim
//!
//! Verification engines for the snailqc transpiler: does a routed circuit
//! still implement its source program?
//!
//! The dense statevector simulator in `snailqc-circuit` answers that up to
//! [`DENSE_VERIFY_MAX_QUBITS`] qubits. This crate extends verification to
//! the kiloqubit devices of the co-design study:
//!
//! * [`tableau`] — a bit-packed Aaronson–Gottesman stabilizer tableau.
//!   Qubit-major bitset storage makes each Clifford gate an `O(rows/64)`
//!   word operation, so routed GHZ circuits on 625- and 1024-qubit devices
//!   verify in well under a second. Group equality goes through a unique
//!   canonical (reduced-echelon) form with word-level row multiplication.
//! * [`pauli`] — single Pauli-string propagation, including structural
//!   commutation through non-Clifford diagonal gates, used for spot checks
//!   on large near-Clifford circuits.
//! * [`verify`] — [`verify_equivalent`], the one entry point that picks the
//!   right engine (stabilizer proof / dense proof / Pauli spot checks) from
//!   the circuit class and register size.

#![warn(missing_docs)]

pub mod pauli;
pub mod tableau;
pub mod verify;

pub use pauli::{Obstruction, PauliString};
pub use tableau::{CanonicalForm, NotClifford, Tableau};
pub use verify::{verify_equivalent, Verdict, DENSE_VERIFY_MAX_QUBITS, PAULI_SPOT_SAMPLES};
