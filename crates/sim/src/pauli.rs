//! Pauli-propagation spot checks for near-Clifford circuits.
//!
//! A single Pauli string is a one-row [`Tableau`], so Clifford gates push it
//! through with the same word-level conjugation rules. The twist is that a
//! Pauli can also survive *non-Clifford* gates when it commutes with them
//! structurally:
//!
//! * diagonal gates (`T`, `RZ(θ)`, `CPhase(λ)`, `RZZ(θ)`, …) commute with
//!   any Pauli that is Z-only on the gate's qubits, and
//! * every gate commutes with a Pauli that is the identity on its qubits.
//!
//! Propagating a handful of Paulis through both the source and routed
//! circuit and comparing the endpoints (up to the layout permutation) gives
//! a cheap necessary condition for equivalence at sizes where dense
//! simulation is impossible and the circuit is not fully Clifford.

use crate::tableau::Tableau;
use snailqc_circuit::{Circuit, Gate};

/// Why a Pauli could not be pushed through a gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obstruction {
    /// Name of the gate the Pauli failed to commute through.
    pub gate: &'static str,
}

impl std::fmt::Display for Obstruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Pauli does not propagate through non-Clifford gate {}",
            self.gate
        )
    }
}

impl std::error::Error for Obstruction {}

/// A signed Pauli string over `n` qubits, propagated by conjugation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PauliString {
    tab: Tableau,
}

impl PauliString {
    /// The identity string over `n` qubits.
    pub fn identity(n: usize) -> Self {
        Self {
            tab: Tableau::identity(n, 1),
        }
    }

    /// `Z` on qubit `q`, identity elsewhere.
    pub fn z(n: usize, q: usize) -> Self {
        let mut p = Self::identity(n);
        p.tab.set_z_bit(0, q, true);
        p
    }

    /// `X` on qubit `q`, identity elsewhere.
    pub fn x(n: usize, q: usize) -> Self {
        let mut p = Self::identity(n);
        p.tab.set_x_bit(0, q, true);
        p
    }

    /// X component on qubit `q`.
    pub fn x_bit(&self, q: usize) -> bool {
        self.tab.x_bit(0, q)
    }

    /// Z component on qubit `q`.
    pub fn z_bit(&self, q: usize) -> bool {
        self.tab.z_bit(0, q)
    }

    /// Whether the string carries a −1 sign.
    pub fn sign(&self) -> bool {
        self.tab.sign_bit(0)
    }

    /// True when the string acts as the identity on qubit `q`.
    pub fn is_identity_on(&self, q: usize) -> bool {
        !self.x_bit(q) && !self.z_bit(q)
    }

    /// True when the string is diagonal (I or Z) on qubit `q`.
    pub fn is_diagonal_on(&self, q: usize) -> bool {
        !self.x_bit(q)
    }

    /// Remaps the string onto a larger register: qubit `q` goes to
    /// `phys_of[q]`, all other qubits get the identity.
    pub fn embed(&self, phys_of: &[usize], num_physical: usize) -> PauliString {
        let mut out = PauliString::identity(num_physical);
        for (q, &p) in phys_of.iter().enumerate() {
            out.tab.set_x_bit(0, p, self.x_bit(q));
            out.tab.set_z_bit(0, p, self.z_bit(q));
        }
        out.tab.set_sign_bit(0, self.sign());
        out
    }

    /// Conjugates the string through one gate.
    ///
    /// Clifford gates always succeed. A non-Clifford diagonal gate succeeds
    /// (leaving the string unchanged) when the string is diagonal on the
    /// gate's qubits; any other non-Clifford gate requires the string to be
    /// the identity there. Otherwise the propagation is [`Obstruction`]ed
    /// and the string is left unchanged.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), Obstruction> {
        if gate.is_clifford() {
            self.tab
                .apply_gate(gate, qubits)
                .expect("clifford gate conjugates");
            return Ok(());
        }
        let commutes = match gate {
            // Diagonal non-Clifford gates commute with Z-only strings.
            Gate::T | Gate::Tdg | Gate::RZ(_) | Gate::P(_) => self.is_diagonal_on(qubits[0]),
            Gate::CPhase(_) | Gate::RZZ(_) => {
                self.is_diagonal_on(qubits[0]) && self.is_diagonal_on(qubits[1])
            }
            // Anything else only passes a Pauli that does not touch it.
            _ => qubits.iter().all(|&q| self.is_identity_on(q)),
        };
        if commutes {
            Ok(())
        } else {
            Err(Obstruction { gate: gate.name() })
        }
    }

    /// Conjugates the string through the whole circuit in order.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), Obstruction> {
        for inst in circuit.instructions() {
            self.apply_gate(&inst.gate, &inst.qubits)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clifford_conjugation_matches_textbook_rules() {
        // H Z H† = X.
        let mut p = PauliString::z(2, 0);
        p.apply_gate(&Gate::H, &[0]).unwrap();
        assert!(p.x_bit(0) && !p.z_bit(0) && !p.sign());

        // CX spreads X from control to target.
        let mut p = PauliString::x(2, 0);
        p.apply_gate(&Gate::CX, &[0, 1]).unwrap();
        assert!(p.x_bit(0) && p.x_bit(1));
    }

    #[test]
    fn diagonal_non_clifford_passes_z_strings() {
        let mut p = PauliString::z(2, 0);
        p.apply_gate(&Gate::T, &[0]).unwrap();
        p.apply_gate(&Gate::RZ(0.3), &[0]).unwrap();
        p.apply_gate(&Gate::RZZ(0.7), &[0, 1]).unwrap();
        assert!(p.z_bit(0) && !p.x_bit(0));
    }

    #[test]
    fn diagonal_non_clifford_obstructs_x_strings() {
        let mut p = PauliString::x(1, 0);
        let err = p.apply_gate(&Gate::T, &[0]).unwrap_err();
        assert_eq!(err.gate, "t");
    }

    #[test]
    fn general_non_clifford_needs_identity_support() {
        let mut p = PauliString::z(3, 2);
        // Syc on other qubits: fine.
        p.apply_gate(&Gate::Syc, &[0, 1]).unwrap();
        // Syc touching the Z: obstructed.
        assert!(p.apply_gate(&Gate::Syc, &[1, 2]).is_err());
    }

    #[test]
    fn embed_remaps_support() {
        let mut p = PauliString::z(2, 0);
        p.apply_gate(&Gate::H, &[0]).unwrap(); // → X on qubit 0
        let e = p.embed(&[4, 2], 6);
        assert!(e.x_bit(4) && !e.z_bit(4));
        assert!(e.is_identity_on(0) && e.is_identity_on(2));
    }
}
