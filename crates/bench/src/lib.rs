//! # snailqc-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation. Each artifact has a dedicated binary:
//!
//! | Binary      | Paper artifact                                             |
//! |-------------|------------------------------------------------------------|
//! | `table1`    | Table 1 — 16–20 qubit topology metrics                      |
//! | `table2`    | Table 2 — 84-qubit topology metrics                         |
//! | `fig04`     | Fig. 4 — SWAP counts, 80-qubit baselines (+ §3.2 ratios)    |
//! | `fig11`     | Fig. 11 — SWAP counts, 16-qubit SNAIL topologies            |
//! | `fig12`     | Fig. 12 — SWAP counts, 84-qubit SNAIL vs baselines          |
//! | `fig13`     | Fig. 13 — 2Q gate counts, 16-qubit co-designed machines     |
//! | `fig14`     | Fig. 14 — 2Q gate counts, 84-qubit co-designed machines     |
//! | `fig15`     | Fig. 15 — `ⁿ√iSWAP` decomposition / total fidelity study    |
//! | `headline`  | Abstract / §6 headline ratios and the §6.1 Tree progression |
//! | `fig_noise` | Noise-aware routing vs per-edge error heterogeneity (new)   |
//!
//! All binaries print human-readable tables and write machine-readable JSON
//! under `target/paper-results/`. By default they run a reduced sweep sized
//! for a laptop; set `SNAILQC_FULL=1` to reproduce the paper-scale sweeps.
//! Sweep cells are additionally cached in
//! `target/paper-results/sweep-store.jsonl` ([`run_sweep_cached`]) and
//! replayed on repeated runs; set `SNAILQC_NO_CACHE=1` to bypass the store.
//! Criterion benches (`cargo bench`) time the underlying kernels: topology
//! construction/metrics, the transpilation pipeline, and the NuOp optimizer.

#![warn(missing_docs)]

use serde::Serialize;
use snailqc_core::device::Device;
use snailqc_core::store::SweepStore;
use snailqc_core::sweep::{run_sweep_with_store, SweepConfig, SweepPoint};
use snailqc_topology::CouplingGraph;
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

/// True when the caller asked for the full, paper-scale sweep
/// (`SNAILQC_FULL=1`).
pub fn is_full_run() -> bool {
    std::env::var("SNAILQC_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Directory where the binaries drop their JSON results.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("target/paper-results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Wraps bare catalog graphs as [`Device`]s (gate-agnostic sweeps).
pub fn devices_from_graphs(graphs: Vec<CouplingGraph>) -> Vec<Device> {
    graphs.into_iter().map(Device::from_graph).collect()
}

/// Runs a sweep through the persistent result store under
/// `target/paper-results/sweep-store.jsonl`, so repeated bench runs replay
/// cached cells instead of re-routing them. Set `SNAILQC_NO_CACHE=1` to
/// bypass the store (always recompute, persist nothing).
pub fn run_sweep_cached(devices: &[Device], config: &SweepConfig) -> Vec<SweepPoint> {
    if std::env::var("SNAILQC_NO_CACHE")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        return run_sweep_with_store(devices, config, None);
    }
    let mut store = SweepStore::open(results_dir().join("sweep-store.jsonl"));
    let points = run_sweep_with_store(devices, config, Some(&mut store));
    eprintln!(
        "sweep store: {} cells replayed, {} computed ({} total cached in {})",
        store.hits(),
        store.inserted(),
        store.len(),
        store.path().display()
    );
    points
}

/// Serializes `value` to `target/paper-results/<name>.json` and returns the
/// path. Failures are reported but not fatal (the printed table remains).
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(body) => match fs::write(&path, body) {
            Ok(()) => Some(path),
            Err(err) => {
                eprintln!("warning: could not write {}: {err}", path.display());
                None
            }
        },
        Err(err) => {
            eprintln!("warning: could not serialize {name}: {err}");
            None
        }
    }
}

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// One pivoted table: the size axis plus `(topology, cells)` rows.
pub type PivotTable = (Vec<usize>, Vec<(String, Vec<String>)>);

/// Pivots sweep points into per-workload tables:
/// rows = topology, columns = circuit size, cells = `metric`.
pub fn pivot_by_workload<F>(points: &[SweepPoint], metric: F) -> BTreeMap<String, PivotTable>
where
    F: Fn(&SweepPoint) -> f64,
{
    let mut out: BTreeMap<String, PivotTable> = BTreeMap::new();
    // Collect the size axis per workload.
    let mut sizes: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for p in points {
        let w = p.workload.label().to_string();
        let entry = sizes.entry(w).or_default();
        if !entry.contains(&p.circuit_qubits) {
            entry.push(p.circuit_qubits);
        }
    }
    for v in sizes.values_mut() {
        v.sort_unstable();
    }
    // Fill per-topology rows.
    for p in points {
        let w = p.workload.label().to_string();
        let size_axis = sizes[&w].clone();
        let entry = out
            .entry(w.clone())
            .or_insert_with(|| (size_axis.clone(), Vec::new()));
        let row = match entry.1.iter_mut().find(|(name, _)| *name == p.topology) {
            Some((_, row)) => row,
            None => {
                entry
                    .1
                    .push((p.topology.clone(), vec![String::from("-"); size_axis.len()]));
                &mut entry.1.last_mut().unwrap().1
            }
        };
        if let Some(col) = size_axis.iter().position(|&s| s == p.circuit_qubits) {
            row[col] = format!("{:.0}", metric(p));
        }
    }
    out
}

/// Prints the pivoted sweep as one table per workload.
pub fn print_sweep(title: &str, points: &[SweepPoint], metric: impl Fn(&SweepPoint) -> f64) {
    for (workload, (sizes, rows)) in pivot_by_workload(points, &metric) {
        let mut headers = vec!["topology".to_string()];
        headers.extend(sizes.iter().map(|s| s.to_string()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|(name, cells)| {
                let mut r = vec![name.clone()];
                r.extend(cells.iter().cloned());
                r
            })
            .collect();
        print_table(&format!("{title} — {workload}"), &header_refs, &table_rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snailqc_core::sweep::run_sweep;
    use snailqc_topology::catalog;

    #[test]
    fn pivot_produces_one_table_per_workload() {
        let devices = devices_from_graphs(vec![catalog::hypercube_16(), catalog::tree_20()]);
        let points = run_sweep(&devices, &SweepConfig::smoke());
        let pivot = pivot_by_workload(&points, |p| p.report.swap_count as f64);
        assert_eq!(pivot.len(), 2); // GHZ and QFT
        for (_, (sizes, rows)) in pivot {
            assert_eq!(sizes, vec![4, 6]);
            assert_eq!(rows.len(), 2); // two topologies
        }
    }

    #[test]
    fn json_writer_creates_file() {
        let path = write_json("unit-test-artifact", &vec![1, 2, 3]).expect("write");
        assert!(path.exists());
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains('1'));
    }

    #[test]
    fn full_run_flag_defaults_to_false() {
        // The test environment does not set SNAILQC_FULL.
        if std::env::var("SNAILQC_FULL").is_err() {
            assert!(!is_full_run());
        }
    }
}
