//! Regenerates Fig. 11: total and critical-path SWAP counts for the proposed
//! 16–20 qubit SNAIL topologies (gate-agnostic).

use snailqc_bench::{devices_from_graphs, is_full_run, print_sweep, run_sweep_cached, write_json};
use snailqc_core::sweep::SweepConfig;
use snailqc_topology::catalog;
use snailqc_workloads::Workload;

fn main() {
    let devices = devices_from_graphs(vec![
        catalog::square_lattice_16(),
        catalog::hypercube_16(),
        catalog::tree_20(),
        catalog::tree_rr_20(),
        catalog::corral11_16(),
        catalog::corral12_16(),
    ]);
    let sizes = if is_full_run() {
        SweepConfig::small_sizes()
    } else {
        vec![4, 8, 12, 16]
    };
    let config = SweepConfig {
        workloads: Workload::all().to_vec(),
        sizes,
        routing_trials: 4,
        error_weight: 0.0,
        seed: 2022,
    };
    let points = run_sweep_cached(&devices, &config);

    print_sweep("Fig. 11 (top) — total SWAP count", &points, |p| {
        p.report.swap_count as f64
    });
    print_sweep("Fig. 11 (bottom) — critical-path SWAPs", &points, |p| {
        p.report.swap_depth as f64
    });

    if let Some(path) = write_json("fig11", &points) {
        println!("\nwrote {}", path.display());
    }
}
