//! Regenerates the paper's headline numbers (abstract, §6.1, conclusion):
//! hypercube + √iSWAP versus heavy-hex + CNOT on Quantum Volume circuits, and
//! the Heavy-Hex → Tree → Hypercube SWAP progression.

use snailqc_bench::{is_full_run, print_table, write_json};
use snailqc_core::headline::{quantum_volume_headline, tree_progression, HeadlineConfig};

fn main() {
    let config = if is_full_run() {
        HeadlineConfig::default()
    } else {
        HeadlineConfig {
            sizes: vec![16, 32, 48],
            routing_trials: 2,
            seed: 2022,
        }
    };
    eprintln!(
        "running headline Quantum Volume sweep over sizes {:?}…",
        config.sizes
    );
    let ratios = quantum_volume_headline(&config);

    print_table(
        "Headline — Hypercube+sqrt-iSWAP vs Heavy-Hex+CNOT (Quantum Volume)",
        &["metric", "measured ratio", "paper"],
        &[
            vec![
                "total SWAPs".into(),
                format!("{:.2}×", ratios.total_swap_ratio),
                "2.57×".into(),
            ],
            vec![
                "critical-path SWAPs".into(),
                format!("{:.2}×", ratios.critical_swap_ratio),
                "5.63×".into(),
            ],
            vec![
                "total 2Q gates".into(),
                format!("{:.2}×", ratios.total_2q_ratio),
                "3.16×".into(),
            ],
            vec![
                "duration-weighted 2Q gates".into(),
                format!("{:.2}×", ratios.critical_2q_ratio),
                "6.11×".into(),
            ],
        ],
    );

    let ((hh_tree_total, hh_tree_crit), (tree_hyper_total, tree_hyper_crit)) =
        tree_progression(&config);
    print_table(
        "§6.1 — SWAP reductions on the largest Quantum Volume size",
        &["transition", "total SWAPs", "critical-path SWAPs", "paper"],
        &[
            vec![
                "Heavy-Hex → Tree".into(),
                format!("-{:.1}%", hh_tree_total * 100.0),
                format!("-{:.1}%", hh_tree_crit * 100.0),
                "-54.3% / -79.8%".into(),
            ],
            vec![
                "Tree → Hypercube".into(),
                format!("-{:.1}%", tree_hyper_total * 100.0),
                format!("-{:.1}%", tree_hyper_crit * 100.0),
                "-42.5% / -54.3%".into(),
            ],
        ],
    );

    if let Some(path) = write_json("headline", &ratios) {
        println!("\nwrote {}", path.display());
    }
}
