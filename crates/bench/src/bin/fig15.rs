//! Regenerates Fig. 15: the `ⁿ√iSWAP` pulse-duration sensitivity study
//! (decomposition infidelity per template size, pulse durations, and total
//! fidelity under the linear-decoherence model), plus the headline "⁴√iSWAP
//! reduces infidelity by ~25% vs √iSWAP at Fb(iSWAP) = 0.99".

use snailqc_bench::{is_full_run, print_table, write_json};
use snailqc_decompose::study::{run_study, StudyConfig};

fn main() {
    let config = if is_full_run() {
        StudyConfig::default()
    } else {
        StudyConfig {
            samples: 8,
            roots: vec![2, 3, 4, 5, 6, 7],
            template_sizes: (2..=6).collect(),
            iswap_fidelities: vec![0.90, 0.95, 0.975, 0.99],
            seed: 2023,
            optimizer_iterations: 180,
        }
    };
    eprintln!(
        "running Fig. 15 study: {} Haar targets × {} roots × {} template sizes…",
        config.samples,
        config.roots.len(),
        config.template_sizes.len()
    );
    let result = run_study(&config);

    // Top-left: average decomposition infidelity vs template size.
    let mut rows = Vec::new();
    for &n in &config.roots {
        let mut row = vec![format!("{n}√iSWAP")];
        for &k in &config.template_sizes {
            row.push(format!(
                "{:.2e}",
                result.infidelity(n, k).unwrap_or(f64::NAN)
            ));
        }
        rows.push(row);
    }
    let mut headers = vec!["basis".to_string()];
    headers.extend(config.template_sizes.iter().map(|k| format!("k={k}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Fig. 15 (top left) — avg decomposition infidelity 1-Fd",
        &header_refs,
        &rows,
    );

    // Bottom: average best total fidelity vs iSWAP pulse fidelity.
    let mut rows = Vec::new();
    for &n in &config.roots {
        let mut row = vec![format!("{n}√iSWAP")];
        for &fb in &config.iswap_fidelities {
            row.push(format!("{:.4}", result.total(n, fb).unwrap_or(f64::NAN)));
        }
        rows.push(row);
    }
    let mut headers = vec!["basis".to_string()];
    headers.extend(config.iswap_fidelities.iter().map(|f| format!("Fb={f}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Fig. 15 (bottom) — avg best total fidelity Ft",
        &header_refs,
        &rows,
    );

    // Headline: infidelity reduction relative to √iSWAP at Fb = 0.99.
    println!(
        "\nInfidelity reduction vs sqrt-iSWAP at Fb(iSWAP) = 0.99 (paper: 3√ 14%, 4√ 25%, 5√ 11%):"
    );
    for n in [3u32, 4, 5] {
        if let Some(reduction) = result.infidelity_reduction_vs_sqrt_iswap(n, 0.99) {
            println!("  {n}√iSWAP: {:.1}%", reduction * 100.0);
        }
    }

    if let Some(path) = write_json("fig15", &result) {
        println!("\nwrote {}", path.display());
    }
}
