//! Noise-heterogeneity study (new scenario axis, beyond the paper): how much
//! estimated infidelity does noise-aware SWAP routing recover on calibrated
//! devices, as a function of how heterogeneous the per-edge error rates are?
//!
//! For every topology in the small catalog line-up and every calibration
//! spread `s`, the device's edge errors are sampled log-uniformly in
//! `[e⁻ˢ, eˢ] × 10⁻³` (seeded, reproducible), each workload is routed twice —
//! noise-blind (`error_weight = 0`) and noise-aware (`error_weight = 1`) —
//! and both routed circuits are scored with the edge-aware fidelity estimator.
//! Cells report the infidelity improvement `(1 − F_blind) / (1 − F_aware)`;
//! values above 1 mean noise-aware routing helped. `spread = 0` is the
//! uniform-noise control where both routers are bitwise-identical and the
//! ratio is exactly 1.

use serde::Serialize;
use snailqc_bench::{is_full_run, print_table, write_json};
use snailqc_core::device::Device;
use snailqc_core::fidelity::{estimate_fidelity_edges, ErrorModel};
use snailqc_topology::{builders, catalog, CouplingGraph};
use snailqc_transpiler::Pipeline;
use snailqc_workloads::Workload;

/// Calibration RNG seed (one fixed draw per (topology, spread) cell).
const CALIBRATION_SEED: u64 = 2023;

#[derive(Serialize)]
struct NoisePoint {
    workload: Workload,
    topology: String,
    spread: f64,
    blind_swaps: usize,
    aware_swaps: usize,
    blind_fidelity: f64,
    aware_fidelity: f64,
    infidelity_improvement: f64,
}

fn main() {
    let graphs: Vec<CouplingGraph> = vec![
        catalog::heavy_hex_20(),
        catalog::square_lattice_16(),
        catalog::hypercube_16(),
        catalog::tree_20(),
        catalog::tree_rr_20(),
        catalog::corral11_16(),
        catalog::corral12_16(),
    ];
    let spreads: Vec<f64> = if is_full_run() {
        vec![0.0, 0.3, 0.6, 0.9, 1.2, 1.5, 1.8]
    } else {
        vec![0.0, 0.6, 1.2, 1.8]
    };
    let workloads = [Workload::QaoaVanilla, Workload::QuantumVolume];
    let size = 12;
    let model = ErrorModel::default();

    let mut points: Vec<NoisePoint> = Vec::new();
    for workload in workloads {
        let circuit = workload.generate(size, 7);
        for graph in &graphs {
            for &spread in &spreads {
                let device =
                    Device::from_graph(builders::calibrated(graph, 1e-3, spread, CALIBRATION_SEED));
                let run = |error_weight: f64| {
                    let pipeline = Pipeline::builder().error_weight(error_weight).build();
                    device.transpile(&circuit, &pipeline).report
                };
                let blind = run(0.0);
                let aware = run(1.0);
                let f_blind = estimate_fidelity_edges(&blind, &model);
                let f_aware = estimate_fidelity_edges(&aware, &model);
                points.push(NoisePoint {
                    workload,
                    topology: device.label().to_string(),
                    spread,
                    blind_swaps: blind.swap_count,
                    aware_swaps: aware.swap_count,
                    blind_fidelity: f_blind.total_fidelity,
                    aware_fidelity: f_aware.total_fidelity,
                    infidelity_improvement: (1.0 - f_blind.total_fidelity)
                        / (1.0 - f_aware.total_fidelity).max(f64::MIN_POSITIVE),
                });
            }
        }
    }

    for workload in workloads {
        let mut headers = vec!["topology".to_string()];
        headers.extend(spreads.iter().map(|s| format!("s={s}")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = graphs
            .iter()
            .map(|graph| {
                let mut row = vec![graph.name().to_string()];
                for &spread in &spreads {
                    let p = points
                        .iter()
                        .find(|p| {
                            p.workload == workload
                                && p.topology == graph.name()
                                && p.spread == spread
                        })
                        .expect("cell computed above");
                    row.push(format!("{:.3}x", p.infidelity_improvement));
                }
                row
            })
            .collect();
        print_table(
            &format!(
                "Noise-aware routing — infidelity improvement vs heterogeneity ({})",
                workload.label()
            ),
            &header_refs,
            &rows,
        );
    }

    if let Some(path) = write_json("fig_noise", &points) {
        println!("\nwrote {}", path.display());
    }
}
