//! Regenerates Table 1: structural metrics of the 16–20 qubit topologies.

use snailqc_bench::{print_table, write_json};
use snailqc_topology::catalog;

fn main() {
    let rows: Vec<Vec<String>> = catalog::table1()
        .into_iter()
        .map(|(name, m)| {
            vec![
                name,
                m.qubits.to_string(),
                format!("{:.1}", m.diameter as f64),
                format!("{:.2}", m.avg_distance),
                format!("{:.2}", m.avg_connectivity),
            ]
        })
        .collect();
    print_table(
        "Table 1 — Topologies and Connectivities (16–20 qubits)",
        &[
            "topology",
            "qubits",
            "diameter",
            "avg distance",
            "avg connectivity",
        ],
        &rows,
    );
    if let Some(path) = write_json("table1", &catalog::table1()) {
        println!("\nwrote {}", path.display());
    }
    println!(
        "\nPaper reference rows: Heavy-Hex (20, 8.0, 3.77, 2.1), Square-Lattice (16, 6.0, 2.5, 3.0),\n\
         Tree (20, 3.0, 2.15, 4.6), Tree-RR (20, 3.0, 2.03, 4.6), Corral1,1 (16, 4.0, 2.06, 5.0),\n\
         Corral1,2 (16, 2.0, 1.5, 6.0), Hypercube (16, 4.0, 2.0, 4.0)."
    );
}
