//! Load generator for the `snailqc serve` daemon.
//!
//! Spawns an in-process server on an ephemeral TCP port, drives it through
//! the real wire protocol with a corpus of workload circuits, and writes
//! `BENCH_serve.json` at the repository root:
//!
//! * **cold phase** — every distinct request once, on a fresh daemon: the
//!   cost of a cache-miss transpile including device warm-up;
//! * **warm phase** — concurrent client threads replaying the corpus: the
//!   steady-state the daemon exists for, where devices, routing caches and
//!   the response cache are all hot;
//! * the daemon's own `stats` RPC snapshot (queue, cache hit rates, its
//!   latency histogram) embedded for cross-checking.
//!
//! The harness also *verifies* the serving contract while it measures:
//! every response's `routed_digest` must match the cold phase's digest for
//! that request (bitwise reproducibility under concurrency), and `busy`
//! rejections are retried and counted rather than dropped.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p snailqc-bench --bin bench_serve
//! ```
//!
//! Set `SNAILQC_PERF_REDUCED=1` (the CI smoke configuration) for a smaller
//! corpus and fewer repetitions; the JSON is still produced, with
//! `"reduced": true`.

use serde::Serialize;
use serde_json::Value;
use snailqc::serve::protocol::{object, Client};
use snailqc::serve::{Bind, BoundAddr, ServeConfig, Server};
use snailqc_workloads::Workload;
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One distinct transpile request in the corpus.
struct Case {
    name: String,
    params: Value,
}

/// The corpus: (workload × size × topology × seed) cells emitted as QASM,
/// sized to finish in seconds while exercising several warm devices.
fn corpus(reduced: bool) -> Vec<Case> {
    let cells: &[(Workload, usize, &str, u64)] = if reduced {
        &[
            (Workload::QaoaVanilla, 12, "corral11-16", 7),
            (Workload::Qft, 12, "tree-20", 7),
        ]
    } else {
        &[
            (Workload::QaoaVanilla, 12, "corral11-16", 7),
            (Workload::QaoaVanilla, 12, "corral11-16", 8),
            (Workload::Qft, 12, "tree-20", 7),
            (Workload::QuantumVolume, 12, "heavy-hex-20", 7),
            (Workload::QuantumVolume, 16, "heavy-hex-20", 7),
            (Workload::TimHamiltonian, 12, "tree-20", 7),
        ]
    };
    cells
        .iter()
        .map(|&(workload, size, topology, seed)| {
            let qasm = snailqc::qasm::emit(&workload.generate(size, seed));
            Case {
                name: format!("{}-{size}@{topology}/s{seed}", workload.label()),
                params: object(vec![
                    ("source", Value::String(qasm)),
                    ("topology", Value::String(topology.to_string())),
                    ("basis", Value::String("sqrt-iswap".to_string())),
                    ("seed", Value::UInt(seed)),
                ]),
            }
        })
        .collect()
}

/// One request over an open client, retrying `busy` rejections (counted).
fn call_transpile(client: &mut Client, case: &Case, busy_retries: &mut u64) -> (f64, String) {
    loop {
        let started = Instant::now();
        match client.call("transpile", case.params.clone()) {
            Ok(result) => {
                let micros = started.elapsed().as_secs_f64() * 1e6;
                let digest = result
                    .get("routed_digest")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string();
                return (micros, digest);
            }
            Err(failure) if failure.code == "busy" => {
                *busy_retries += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(failure) => panic!("{}: {failure}", case.name),
        }
    }
}

/// Exact percentile of a sorted sample (nearest-rank on the closed index).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let index = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[index.min(sorted.len() - 1)]
}

#[derive(Serialize)]
struct PhaseSummary {
    requests: usize,
    p50_micros: f64,
    p90_micros: f64,
    p99_micros: f64,
    max_micros: f64,
    mean_micros: f64,
}

fn summarize(mut micros: Vec<f64>) -> PhaseSummary {
    micros.sort_by(|a, b| a.total_cmp(b));
    let mean = micros.iter().sum::<f64>() / micros.len().max(1) as f64;
    PhaseSummary {
        requests: micros.len(),
        p50_micros: percentile(&micros, 50.0),
        p90_micros: percentile(&micros, 90.0),
        p99_micros: percentile(&micros, 99.0),
        max_micros: micros.last().copied().unwrap_or(0.0),
        mean_micros: mean,
    }
}

#[derive(Serialize)]
struct ServeReport {
    generated_by: &'static str,
    reduced: bool,
    corpus: Vec<String>,
    clients: usize,
    rounds_per_client: usize,
    cold: PhaseSummary,
    warm: PhaseSummary,
    warm_wall_secs: f64,
    warm_throughput_rps: f64,
    busy_retries: u64,
    digests_verified: usize,
    /// The daemon's own `stats` RPC at the end of the run.
    server_stats: Value,
}

fn main() {
    let reduced = std::env::var("SNAILQC_PERF_REDUCED")
        .map(|v| v == "1")
        .unwrap_or(false);
    let clients = if reduced { 2 } else { 4 };
    let rounds = if reduced { 3 } else { 25 };
    let cases = corpus(reduced);

    let server = Server::spawn(ServeConfig {
        bind: Bind::Tcp("127.0.0.1:0".into()),
        workers: 0,
        queue_capacity: 64,
        store: None,
    })
    .expect("server spawns");
    let addr = match server.addr() {
        BoundAddr::Tcp(addr) => addr.to_string(),
        #[allow(unreachable_patterns)]
        _ => unreachable!("tcp bind"),
    };

    // Cold phase: every distinct request once, serially, on the fresh
    // daemon. Records the reference digest per case.
    let mut busy_retries = 0u64;
    let mut client = Client::connect_tcp(&addr).expect("client connects");
    let mut cold_micros = Vec::with_capacity(cases.len());
    let mut reference: HashMap<String, String> = HashMap::new();
    for case in &cases {
        let (micros, digest) = call_transpile(&mut client, case, &mut busy_retries);
        assert!(!digest.is_empty(), "{}: no routed_digest", case.name);
        cold_micros.push(micros);
        reference.insert(case.name.clone(), digest);
    }

    // Warm phase: concurrent clients replaying the corpus round-robin, each
    // verifying every digest against the cold reference.
    let warm_started = Instant::now();
    let worker_outcomes: Vec<(Vec<f64>, u64, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|offset| {
                let cases = &cases;
                let reference = &reference;
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect_tcp(&addr).expect("client connects");
                    let mut micros = Vec::with_capacity(rounds * cases.len());
                    let mut busy = 0u64;
                    let mut verified = 0usize;
                    for round in 0..rounds {
                        for i in 0..cases.len() {
                            let case = &cases[(i + offset + round) % cases.len()];
                            let (sample, digest) = call_transpile(&mut client, case, &mut busy);
                            assert_eq!(
                                &digest, &reference[&case.name],
                                "{}: digest drifted under concurrency",
                                case.name
                            );
                            verified += 1;
                            micros.push(sample);
                        }
                    }
                    (micros, busy, verified)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let warm_wall_secs = warm_started.elapsed().as_secs_f64();

    let mut warm_micros = Vec::new();
    let mut digests_verified = 0usize;
    for (micros, busy, verified) in worker_outcomes {
        warm_micros.extend(micros);
        busy_retries += busy;
        digests_verified += verified;
    }
    let warm_requests = warm_micros.len();

    let server_stats = client.call("stats", object(vec![])).expect("stats RPC");
    client
        .call("shutdown", object(vec![]))
        .expect("shutdown RPC");
    server.join().expect("graceful drain");

    let report = ServeReport {
        generated_by: "cargo run --release -p snailqc-bench --bin bench_serve",
        reduced,
        corpus: cases.iter().map(|c| c.name.clone()).collect(),
        clients,
        rounds_per_client: rounds,
        cold: summarize(cold_micros),
        warm: summarize(warm_micros),
        warm_wall_secs,
        warm_throughput_rps: warm_requests as f64 / warm_wall_secs.max(1e-9),
        busy_retries,
        digests_verified,
        server_stats,
    };

    println!(
        "serve bench: {} cold cases, {} warm requests from {clients} clients \
         ({:.0} req/s warm, {} digests verified, {} busy retries)",
        report.corpus.len(),
        warm_requests,
        report.warm_throughput_rps,
        report.digests_verified,
        report.busy_retries
    );
    println!(
        "  cold  p50 {:>9.1} µs   p99 {:>9.1} µs",
        report.cold.p50_micros, report.cold.p99_micros
    );
    println!(
        "  warm  p50 {:>9.1} µs   p99 {:>9.1} µs",
        report.warm.p50_micros, report.warm.p99_micros
    );

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    let json = serde_json::to_string_pretty(&report).expect("render report");
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}
