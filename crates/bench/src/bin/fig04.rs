//! Regenerates Fig. 4: total and critical-path SWAP counts for the baseline
//! topologies at 84 qubits (gate-agnostic), plus the §3.2 QAOA critical-path
//! ratios.

use snailqc_bench::{devices_from_graphs, is_full_run, print_sweep, run_sweep_cached, write_json};
use snailqc_core::sweep::SweepConfig;
use snailqc_topology::catalog;
use snailqc_workloads::Workload;

fn main() {
    let devices = devices_from_graphs(vec![
        catalog::heavy_hex_84(),
        catalog::hex_lattice_84(),
        catalog::square_lattice_84(),
        catalog::lattice_alt_diagonals_84(),
        catalog::hypercube_84(),
    ]);
    let sizes = if is_full_run() {
        SweepConfig::large_sizes()
    } else {
        vec![8, 24, 48, 80]
    };
    let config = SweepConfig {
        workloads: Workload::all().to_vec(),
        sizes,
        routing_trials: if is_full_run() { 4 } else { 2 },
        error_weight: 0.0,
        seed: 2022,
    };
    eprintln!(
        "running Fig. 4 sweep ({} sizes × {} workloads × {} topologies)…",
        config.sizes.len(),
        config.workloads.len(),
        devices.len()
    );
    let points = run_sweep_cached(&devices, &config);

    print_sweep("Fig. 4 (top) — total SWAP count", &points, |p| {
        p.report.swap_count as f64
    });
    print_sweep("Fig. 4 (bottom) — critical-path SWAPs", &points, |p| {
        p.report.swap_depth as f64
    });

    // §3.2 ratios: Heavy-Hex vs others on the largest QAOA size.
    let largest = *config.sizes.iter().max().unwrap();
    let crit = |name: &str| {
        points
            .iter()
            .find(|p| {
                p.workload == Workload::QaoaVanilla
                    && p.circuit_qubits == largest
                    && p.topology == name
            })
            .map(|p| p.report.swap_depth as f64)
    };
    if let (Some(hh), Some(sq), Some(alt), Some(hy)) = (
        crit("Heavy-Hex-84"),
        crit("Square-Lattice-84"),
        crit("Lattice+AltDiagonals-84"),
        crit("Hypercube-84"),
    ) {
        println!(
            "\n§3.2 check ({largest}-qubit QAOA critical-path SWAPs): Heavy-Hex is {:.2}× Square-Lattice, \
             {:.2}× Lattice+AltDiag, {:.2}× Hypercube (paper: 1.92×, 1.53×, 2.83×).",
            hh / sq,
            hh / alt,
            hh / hy
        );
    }

    if let Some(path) = write_json("fig04", &points) {
        println!("\nwrote {}", path.display());
    }
}
