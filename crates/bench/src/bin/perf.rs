//! Router hot-path performance harness.
//!
//! Times the three stages that dominate sweep turnaround — dense layout,
//! SWAP routing (the hot kernel), and the full pipeline — on a fixed grid of
//! representative (workload × topology × size) cells, prints a table, and
//! writes `BENCH_router.json` at the repository root with per-cell median
//! wall-µs, SWAP counts, and the speedup against the recorded pre-overhaul
//! baseline.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p snailqc-bench --bin perf
//! ```
//!
//! Set `SNAILQC_PERF_REDUCED=1` (the CI smoke configuration) to run one
//! repetition per cell instead of the full median-of-N measurement; the JSON
//! is still produced, with `"reduced": true` so consumers can ignore the
//! noisier numbers.
//!
//! The harness runs with the observability layer enabled and embeds the
//! final metrics snapshot (router work counters, `routing_cache` hit/miss
//! rates) as the report's `metrics` block. The timed pipeline repetitions
//! share one warmed `RoutingCache` per cell so cache hits are exercised
//! even in reduced mode; the raw `route()` loop is kept cache-free and
//! identical to the one that recorded the baseline.
//!
//! The report's `sim` block is the verification-engine tier: the preserved
//! full-scan reference statevector kernels versus the rewritten pair/quad
//! kernels on the 20-qubit Quantum Volume cell (interleaved repetitions,
//! bitwise-identity checked every rep), plus wall time for the kiloqubit
//! stabilizer proofs (routed GHZ on `grid_625` and `hypercube_1024`).

use serde::Serialize;
use snailqc_bench::print_table;
use snailqc_topology::{builders, catalog};
use snailqc_transpiler::{LayoutStrategy, Pipeline, RouterConfig, RoutingCache};
use snailqc_workloads::Workload;
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicIsize, Ordering};
use std::time::Instant;

/// Live/peak byte-counting wrapper around the system allocator, so the
/// harness can assert the kiloqubit routing tier stays within its memory
/// ceiling (the compact `u16` hop rows, not the legacy all-pairs `f64`
/// matrices).
///
/// Tracking is off by default and enabled only inside [`peak_alloc_during`]
/// — the shared `fetch_max` would otherwise ping-pong a cache line between
/// the parallel trial threads and measurably inflate every *timed* route
/// (the speedup column compares against baselines recorded without any
/// allocator instrumentation). Peak probes therefore run as separate,
/// untimed calls.
struct CountingAlloc;

static TRACKING: AtomicBool = AtomicBool::new(false);
// Signed: frees of memory allocated before a tracking window began push the
// net-live count below zero inside the window, which must not wrap.
static LIVE_BYTES: AtomicIsize = AtomicIsize::new(0);
static PEAK_BYTES: AtomicIsize = AtomicIsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() && TRACKING.load(Ordering::Relaxed) {
            let size = layout.size() as isize;
            let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if TRACKING.load(Ordering::Relaxed) {
            LIVE_BYTES.fetch_sub(layout.size() as isize, Ordering::Relaxed);
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() && TRACKING.load(Ordering::Relaxed) {
            let delta = new_size as isize - layout.size() as isize;
            let live = LIVE_BYTES.fetch_add(delta, Ordering::Relaxed) + delta;
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        }
        new_ptr
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Peak net heap growth (bytes above the level at entry) while running `f`,
/// with tracking enabled only for the duration.
fn peak_alloc_during<T>(f: impl FnOnce() -> T) -> (usize, T) {
    LIVE_BYTES.store(0, Ordering::Relaxed);
    PEAK_BYTES.store(0, Ordering::Relaxed);
    TRACKING.store(true, Ordering::SeqCst);
    let value = f();
    TRACKING.store(false, Ordering::SeqCst);
    let peak = PEAK_BYTES.load(Ordering::Relaxed);
    (peak.max(0) as usize, value)
}

/// One measured grid cell.
struct Cell {
    workload: Workload,
    topology: &'static str,
    size: usize,
    /// Noise-aware cells route with this fidelity weight on a calibrated
    /// (heterogeneous) copy of the topology; `0.0` is the noise-blind router.
    error_weight: f64,
}

const fn cell(workload: Workload, topology: &'static str, size: usize, error_weight: f64) -> Cell {
    Cell {
        workload,
        topology,
        size,
        error_weight,
    }
}

/// The measurement grid: every 84-qubit catalog family (the paper-scale
/// cells the acceptance speedup is judged on), two 16/20-qubit cells, two
/// noise-aware cells exercising the weighted-Dijkstra scoring path, one
/// file-backed device-spec cell (a `.json` topology loads through
/// `Device::from_spec_file`, timing the same router on a shipped spec), and
/// the kiloqubit tier — `grid_625` and `hypercube_1024` spec cells that
/// track µs per routed 2Q gate versus device size and pin the router's peak
/// heap growth at 1024 qubits (the lazy `u16` hop rows, never the legacy
/// all-pairs `f64` matrices).
const CELLS: [Cell; 16] = [
    cell(Workload::QaoaVanilla, "heavy-hex-84", 24, 0.0),
    cell(Workload::QuantumVolume, "heavy-hex-84", 24, 0.0),
    cell(Workload::QaoaVanilla, "square-lattice-84", 24, 0.0),
    cell(Workload::QuantumVolume, "hypercube-84", 24, 0.0),
    cell(Workload::Qft, "tree-84", 24, 0.0),
    cell(Workload::QuantumVolume, "hex-lattice-84", 24, 0.0),
    cell(Workload::QaoaVanilla, "lattice-alt-diagonals-84", 24, 0.0),
    cell(Workload::Qft, "tree-rr-84", 24, 0.0),
    cell(Workload::QaoaVanilla, "corral11-16", 12, 0.0),
    cell(Workload::QuantumVolume, "heavy-hex-20", 12, 0.0),
    cell(Workload::QaoaVanilla, "heavy-hex-84", 24, 1.0),
    cell(Workload::QuantumVolume, "square-lattice-84", 24, 1.0),
    cell(
        Workload::QaoaVanilla,
        "devices/ibm_heavy_hex_127.json",
        24,
        0.0,
    ),
    cell(Workload::QuantumVolume, "devices/grid_625.json", 24, 0.0),
    cell(Workload::Ghz, "devices/grid_625.json", 625, 0.0),
    cell(Workload::Ghz, "devices/hypercube_1024.json", 1000, 0.0),
];

/// Ceiling on the router's peak heap growth while routing the 1000-qubit
/// workload on `hypercube_1024` (the `size >= KILOQUBIT_SIZE` cells). The
/// legacy routing state alone — a `Vec<Vec<usize>>` hop matrix plus a dense
/// `f64` scoring matrix, both 1024×1024 — needed ≥ 16.8 MB before any trial
/// state; the compact lazy `u16` rows keep the whole route comfortably
/// under this bound, so a regression back to eagerly materialized all-pairs
/// `f64` matrices fails the harness. 8 MiB sits below even a single legacy
/// 1024×1024 `usize` matrix (8.4 MB) while leaving ~40% headroom over the
/// ~6 MB peak measured at 1000 qubits (the dense bool adjacency matrix —
/// 1 MB at 1024 qubits — is deliberately part of that budget).
const KILOQUBIT_ROUTE_PEAK_CEILING_BYTES: usize = 8 << 20;

/// Cells at or above this size form the kiloqubit tier.
const KILOQUBIT_SIZE: usize = 625;

/// Median routing wall-µs per cell recorded from the pre-overhaul router
/// (commit 7cd796e, BTreeMap coupling graph + per-trial DAG rebuild +
/// O(total²) lookahead rescan + sequential trials), measured by this same
/// harness with `REPS` repetitions. Keys: (workload label, topology, size,
/// error-weight bits).
const BASELINE_ROUTE_MICROS: [(&str, &str, usize, u64, f64); 12] = [
    ("QAOA Vanilla", "heavy-hex-84", 24, 0, 16972.2),
    ("Quantum Volume", "heavy-hex-84", 24, 0, 18171.8),
    ("QAOA Vanilla", "square-lattice-84", 24, 0, 6051.6),
    ("Quantum Volume", "hypercube-84", 24, 0, 9172.8),
    ("QFT", "tree-84", 24, 0, 4458.2),
    ("Quantum Volume", "hex-lattice-84", 24, 0, 17221.0),
    ("QAOA Vanilla", "lattice-alt-diagonals-84", 24, 0, 6484.8),
    ("QFT", "tree-rr-84", 24, 0, 7431.4),
    ("QAOA Vanilla", "corral11-16", 12, 0, 449.0),
    ("Quantum Volume", "heavy-hex-20", 12, 0, 1312.0),
    (
        "QAOA Vanilla",
        "heavy-hex-84",
        24,
        0x3FF0000000000000,
        12759.2,
    ),
    (
        "Quantum Volume",
        "square-lattice-84",
        24,
        0x3FF0000000000000,
        11515.6,
    ),
];

/// Full-measurement repetitions per cell (median taken); reduced mode uses 1.
const REPS: usize = 5;

#[derive(Serialize)]
struct CellResult {
    workload: &'static str,
    topology: &'static str,
    size: usize,
    error_weight: f64,
    swaps: usize,
    /// Two-qubit gates in the routed circuit (workload 2Q gates + SWAPs) —
    /// the denominator of the scaling metric below.
    routed_two_qubit_gates: usize,
    layout_micros: f64,
    route_micros: f64,
    /// Median routing µs divided by routed 2Q gates: the per-gate routing
    /// cost the kiloqubit tier tracks against device size in CI.
    route_micros_per_2q_gate: f64,
    pipeline_micros: f64,
    /// Peak heap growth (bytes) of one untimed `route()` probe — measured
    /// only on kiloqubit cells, where the harness asserts the ceiling.
    route_peak_bytes: Option<usize>,
    /// Distance state resident in the warmed routing cache after the cell's
    /// pipeline repetitions (compact `u16` hop rows + any `f64` scoring
    /// rows; lazy storage counts only materialized rows).
    cache_resident_distance_bytes: usize,
    baseline_route_micros: Option<f64>,
    speedup: Option<f64>,
}

/// The `sim` block: dense-kernel rewrite speedup and stabilizer proof
/// times (see the module docs).
#[derive(Serialize)]
struct SimTier {
    qv_qubits: usize,
    qv_depth: usize,
    seed: u64,
    reps: usize,
    /// Median wall-µs of the preserved pre-rewrite full-scan kernels.
    reference_micros: f64,
    /// Median wall-µs of the pair/quad-iteration + AVX2 kernels.
    optimized_micros: f64,
    speedup: f64,
    /// Every repetition's optimized state matched the reference state bit
    /// for bit (the rewrite's correctness bar, re-checked under the clock).
    bitwise_identical: bool,
    /// Stabilizer-engine `verify_equivalent` wall-µs on routed GHZ-625
    /// (25×25 grid) and GHZ-1000 (10-d hypercube), routing untimed.
    ghz625_verify_micros: f64,
    ghz1024_verify_micros: f64,
}

fn sim_tier(reps: usize) -> SimTier {
    use snailqc_circuit::simulator::reference;
    let (qv_qubits, qv_depth, seed) = (20usize, 20usize, 7u64);
    let circuit = snailqc_workloads::quantum_volume(qv_qubits, qv_depth, seed);
    // Interleave reference and optimized repetitions so drift in machine
    // load lands on both sides of the ratio evenly.
    let mut ref_samples = Vec::with_capacity(reps);
    let mut opt_samples = Vec::with_capacity(reps);
    let mut bitwise_identical = true;
    for _ in 0..reps {
        let (micros, old) = time_micros(|| reference::simulate(&circuit));
        ref_samples.push(micros);
        let (micros, new) = time_micros(|| snailqc_circuit::simulate(&circuit));
        opt_samples.push(micros);
        bitwise_identical &= old
            .amplitudes()
            .iter()
            .zip(new.amplitudes().iter())
            .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits());
    }
    let verify_cell = |graph: &snailqc_topology::CouplingGraph, qubits: usize| {
        let circuit = snailqc_workloads::ghz(qubits);
        let layout = LayoutStrategy::Dense.compute(&circuit, graph);
        let routed = snailqc_transpiler::route(&circuit, graph, &layout, &RouterConfig::default());
        let (micros, verdict) = time_micros(|| snailqc_sim::verify_equivalent(&circuit, &routed));
        assert!(verdict.is_equivalent(), "{}: {verdict}", graph.name());
        micros
    };
    let ghz625_verify_micros = verify_cell(&builders::square_lattice(25, 25), 625);
    let ghz1024_verify_micros = verify_cell(&builders::hypercube(10), 1000);
    let (reference_micros, optimized_micros) = (median(ref_samples), median(opt_samples));
    SimTier {
        qv_qubits,
        qv_depth,
        seed,
        reps,
        reference_micros,
        optimized_micros,
        speedup: reference_micros / optimized_micros,
        bitwise_identical,
        ghz625_verify_micros,
        ghz1024_verify_micros,
    }
}

#[derive(Serialize)]
struct PerfReport {
    generated_by: &'static str,
    baseline: &'static str,
    reduced: bool,
    reps: usize,
    cells: Vec<CellResult>,
    /// Median routing speedup across the 84-qubit cells (the acceptance
    /// number; `null` until every such cell has a recorded baseline).
    median_speedup_84q: Option<f64>,
    /// Verification-engine tier: dense-kernel rewrite speedup on QV-20
    /// (bitwise-identity checked) and kiloqubit stabilizer proof times.
    sim: SimTier,
    /// Observability snapshot taken after the full grid: router work
    /// counters (`router.*`), routing-cache hit/miss rates
    /// (`routing_cache.*`), and histogram quantiles.
    metrics: serde_json::Value,
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

fn time_micros<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let started = Instant::now();
    let value = f();
    (started.elapsed().as_secs_f64() * 1e6, value)
}

fn baseline_for(cell: &Cell) -> Option<f64> {
    BASELINE_ROUTE_MICROS
        .iter()
        .find(|&&(w, t, s, ew, _)| {
            w == cell.workload.label()
                && t == cell.topology
                && s == cell.size
                && ew == cell.error_weight.to_bits()
        })
        .map(|&(_, _, _, _, micros)| micros)
}

fn main() {
    let reduced = std::env::var("SNAILQC_PERF_REDUCED")
        .map(|v| v == "1")
        .unwrap_or(false);
    let reps = if reduced { 1 } else { REPS };
    snailqc_obs::enable();

    let mut results: Vec<CellResult> = Vec::with_capacity(CELLS.len());
    for cell in &CELLS {
        // `.json` cells are device-spec files, resolved relative to the
        // repository root; everything else is a catalog name.
        let graph = if cell.topology.ends_with(".json") {
            let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(cell.topology);
            snailqc_core::device::Device::from_spec_file(&path)
                .unwrap_or_else(|e| panic!("{}: {e}", cell.topology))
                .graph()
                .clone()
        } else {
            catalog::by_name(cell.topology).expect("catalog cell")
        };
        let graph = if cell.error_weight > 0.0 {
            builders::calibrated(&graph, 1e-3, 1.2, 17)
        } else {
            graph
        };
        let circuit = cell.workload.generate(cell.size, 7);
        let router = RouterConfig {
            error_weight: cell.error_weight,
            ..RouterConfig::default()
        };
        let pipeline = Pipeline::builder()
            .layout(LayoutStrategy::Dense)
            .router(router)
            .build();

        let mut layout_samples = Vec::with_capacity(reps);
        let mut route_samples = Vec::with_capacity(reps);
        let mut pipeline_samples = Vec::with_capacity(reps);
        let mut swaps = 0usize;
        let mut routed_two_qubit_gates = 0usize;
        let layout = LayoutStrategy::Dense.compute(&circuit, &graph);
        // One warmed cache per cell: the untimed run populates it, so the
        // timed pipeline repetitions exercise routing-cache hits even with
        // a single repetition (reduced mode).
        let cache = RoutingCache::default();
        let _ = pipeline.run_with_native_basis_cached(&circuit, &graph, None, &cache);
        for _ in 0..reps {
            let (micros, _) = time_micros(|| LayoutStrategy::Dense.compute(&circuit, &graph));
            layout_samples.push(micros);
            let (micros, routed) =
                time_micros(|| snailqc_transpiler::route(&circuit, &graph, &layout, &router));
            route_samples.push(micros);
            swaps = routed.swap_count;
            routed_two_qubit_gates = routed.circuit.two_qubit_count();
            let (micros, _) = time_micros(|| {
                pipeline.run_with_native_basis_cached(&circuit, &graph, None, &cache)
            });
            pipeline_samples.push(micros);
        }

        // Kiloqubit cells get one extra untimed route with allocation
        // tracking on: the peak stays out of the timed samples while the
        // ceiling still guards the compact distance state.
        let route_peak_bytes = (cell.size >= KILOQUBIT_SIZE).then(|| {
            let (peak, _) =
                peak_alloc_during(|| snailqc_transpiler::route(&circuit, &graph, &layout, &router));
            assert!(
                peak <= KILOQUBIT_ROUTE_PEAK_CEILING_BYTES,
                "kiloqubit cell {} {}q peaked at {peak} heap bytes \
                 (ceiling {KILOQUBIT_ROUTE_PEAK_CEILING_BYTES}); the router's \
                 distance state is no longer compact",
                cell.topology,
                cell.size,
            );
            peak
        });

        let route_micros = median(route_samples);
        let baseline_route_micros = baseline_for(cell);
        results.push(CellResult {
            workload: cell.workload.label(),
            topology: cell.topology,
            size: cell.size,
            error_weight: cell.error_weight,
            swaps,
            routed_two_qubit_gates,
            layout_micros: median(layout_samples),
            route_micros,
            route_micros_per_2q_gate: route_micros / routed_two_qubit_gates.max(1) as f64,
            pipeline_micros: median(pipeline_samples),
            route_peak_bytes,
            cache_resident_distance_bytes: cache.resident_distance_bytes(),
            baseline_route_micros,
            speedup: baseline_route_micros.map(|b| b / route_micros),
        });
    }

    let speedups_84q: Vec<f64> = results
        .iter()
        .filter(|r| r.topology.ends_with("-84"))
        .filter_map(|r| r.speedup)
        .collect();
    let expected_84q = results
        .iter()
        .filter(|r| r.topology.ends_with("-84"))
        .count();
    let median_speedup_84q = (!speedups_84q.is_empty() && speedups_84q.len() == expected_84q)
        .then(|| median(speedups_84q));

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.workload.to_string(),
                r.topology.to_string(),
                r.size.to_string(),
                format!("{:.1}", r.error_weight),
                r.swaps.to_string(),
                format!("{:.1}", r.layout_micros),
                format!("{:.1}", r.route_micros),
                format!("{:.2}", r.route_micros_per_2q_gate),
                format!("{:.1}", r.pipeline_micros),
                r.route_peak_bytes
                    .map(|p| format!("{:.1}", p as f64 / 1024.0))
                    .unwrap_or_else(|| "-".to_string()),
                r.speedup
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "-".to_string()),
            ]
        })
        .collect();
    print_table(
        &format!(
            "router perf ({} reps{})",
            reps,
            if reduced { ", reduced" } else { "" }
        ),
        &[
            "workload",
            "topology",
            "size",
            "ew",
            "swaps",
            "layout µs",
            "route µs",
            "µs/2q",
            "pipeline µs",
            "peak KiB",
            "speedup",
        ],
        &rows,
    );
    if let Some(m) = median_speedup_84q {
        println!("\nmedian routing speedup on 84-qubit cells: {m:.2}x");
    }

    let sim = sim_tier(reps);
    assert!(
        sim.bitwise_identical,
        "optimized dense kernels drifted from the reference kernels on QV-{}",
        sim.qv_qubits
    );
    println!(
        "\nsim tier: QV-{} dense kernels {:.1} µs vs reference {:.1} µs ({:.2}x, bitwise identical); \
         stabilizer proofs GHZ-625 {:.0} µs, GHZ-1000 {:.0} µs",
        sim.qv_qubits,
        sim.optimized_micros,
        sim.reference_micros,
        sim.speedup,
        sim.ghz625_verify_micros,
        sim.ghz1024_verify_micros,
    );

    let snapshot = snailqc_obs::snapshot();
    let (hits, misses) = (
        snapshot.counter("routing_cache.hits").unwrap_or(0),
        snapshot.counter("routing_cache.misses").unwrap_or(0),
    );
    println!(
        "routing cache: {hits} hits / {misses} misses across {} route calls",
        snapshot.counter("router.calls").unwrap_or(0)
    );

    let report = PerfReport {
        generated_by: "cargo run --release -p snailqc-bench --bin perf",
        baseline: "pre-overhaul router (commit 7cd796e), recorded by this harness",
        reduced,
        reps,
        cells: results,
        median_speedup_84q,
        sim,
        metrics: snailqc_obs::metrics_to_value(&snapshot),
    };
    let path: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_router.json");
    match serde_json::to_string_pretty(&report) {
        Ok(body) => match std::fs::write(&path, body + "\n") {
            Ok(()) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
        },
        Err(err) => eprintln!("warning: could not serialize perf report: {err}"),
    }
}
