//! Regenerates Table 2: structural metrics of the 84-qubit topologies.

use snailqc_bench::{print_table, write_json};
use snailqc_topology::catalog;

fn main() {
    let rows: Vec<Vec<String>> = catalog::table2()
        .into_iter()
        .map(|(name, m)| {
            vec![
                name,
                m.qubits.to_string(),
                format!("{:.1}", m.diameter as f64),
                format!("{:.2}", m.avg_distance),
                format!("{:.2}", m.avg_connectivity),
            ]
        })
        .collect();
    print_table(
        "Table 2 — Scaled Topologies and Connectivities (84 qubits)",
        &[
            "topology",
            "qubits",
            "diameter",
            "avg distance",
            "avg connectivity",
        ],
        &rows,
    );
    if let Some(path) = write_json("table2", &catalog::table2()) {
        println!("\nwrote {}", path.display());
    }
    println!(
        "\nPaper reference rows: Heavy-Hex (84, 21, 8.47, 2.26), Hex-Lattice (84, 17, 6.95, 2.71),\n\
         Square-Lattice (84, 17, 6.26, 3.55), Lattice+AltDiag (84, 11, 4.62, 5.12),\n\
         Tree (84, 5, 3.91, 4.71), Tree-RR (84, 5, 3.65, 4.71), Hypercube (84, 7, 3.32, 6.0)."
    );
}
