//! Regenerates Fig. 14: total and critical-path two-qubit gate counts after
//! basis translation on the 84-qubit co-designed machines.

use snailqc_bench::{is_full_run, print_sweep, run_sweep_cached, write_json};
use snailqc_core::device::Device;
use snailqc_core::machine::Machine;
use snailqc_core::sweep::SweepConfig;
use snailqc_workloads::Workload;

fn main() {
    let devices: Vec<Device> = Machine::figure14_lineup()
        .into_iter()
        .map(Device::from_machine)
        .collect();
    let sizes = if is_full_run() {
        SweepConfig::large_sizes()
    } else {
        vec![8, 24, 48, 80]
    };
    let config = SweepConfig {
        workloads: Workload::all().to_vec(),
        sizes,
        routing_trials: if is_full_run() { 4 } else { 2 },
        error_weight: 0.0,
        seed: 2022,
    };
    eprintln!(
        "running Fig. 14 sweep ({} sizes × {} workloads × {} machines)…",
        config.sizes.len(),
        config.workloads.len(),
        devices.len()
    );
    let points = run_sweep_cached(&devices, &config);

    print_sweep("Fig. 14 (top) — total 2Q basis gates", &points, |p| {
        p.report.basis_gate_count as f64
    });
    print_sweep(
        "Fig. 14 (bottom) — critical-path 2Q gates (pulse duration)",
        &points,
        |p| p.report.basis_gate_depth as f64,
    );

    if let Some(path) = write_json("fig14", &points) {
        println!("\nwrote {}", path.display());
    }
}
