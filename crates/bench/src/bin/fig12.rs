//! Regenerates Fig. 12: total and critical-path SWAP counts at 84 qubits,
//! comparing the SNAIL trees against the common baselines (gate-agnostic).

use snailqc_bench::{devices_from_graphs, is_full_run, print_sweep, run_sweep_cached, write_json};
use snailqc_core::sweep::SweepConfig;
use snailqc_topology::catalog;
use snailqc_workloads::Workload;

fn main() {
    let devices = devices_from_graphs(vec![
        catalog::heavy_hex_84(),
        catalog::square_lattice_84(),
        catalog::tree_84(),
        catalog::tree_rr_84(),
        catalog::hypercube_84(),
    ]);
    let sizes = if is_full_run() {
        SweepConfig::large_sizes()
    } else {
        vec![8, 24, 48, 80]
    };
    let config = SweepConfig {
        workloads: Workload::all().to_vec(),
        sizes,
        routing_trials: if is_full_run() { 4 } else { 2 },
        error_weight: 0.0,
        seed: 2022,
    };
    eprintln!(
        "running Fig. 12 sweep ({} sizes × {} workloads × {} topologies)…",
        config.sizes.len(),
        config.workloads.len(),
        devices.len()
    );
    let points = run_sweep_cached(&devices, &config);

    print_sweep("Fig. 12 (top) — total SWAP count", &points, |p| {
        p.report.swap_count as f64
    });
    print_sweep("Fig. 12 (bottom) — critical-path SWAPs", &points, |p| {
        p.report.swap_depth as f64
    });

    if let Some(path) = write_json("fig12", &points) {
        println!("\nwrote {}", path.display());
    }
}
