//! Criterion benchmarks for the Weyl-chamber analysis and the NuOp template
//! optimizer that drive the Fig. 15 study.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snailqc_circuit::Gate;
use snailqc_decompose::{BasisGate, NuOpDecomposer};
use snailqc_math::random::haar_unitary4;
use snailqc_math::weyl::weyl_coordinates;

fn bench_weyl(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let targets: Vec<_> = (0..32).map(|_| haar_unitary4(&mut rng)).collect();
    c.bench_function("weyl_coordinates_haar", |b| {
        let mut idx = 0usize;
        b.iter(|| {
            let w = weyl_coordinates(&targets[idx % targets.len()]);
            idx += 1;
            w
        })
    });
    c.bench_function("basis_count_haar", |b| {
        let mut idx = 0usize;
        b.iter(|| {
            let n = BasisGate::SqrtISwap.count_for_unitary(&targets[idx % targets.len()]);
            idx += 1;
            n
        })
    });
}

fn bench_nuop(c: &mut Criterion) {
    let mut group = c.benchmark_group("nuop_fit");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(5);
    let target = haar_unitary4(&mut rng);
    let decomposer = NuOpDecomposer::new(Gate::SqrtISwap)
        .with_max_iterations(80)
        .with_restarts(1);
    group.bench_function("sqrt_iswap_k3", |b| {
        b.iter(|| decomposer.fit(&target, 3, 11))
    });
    let quarter = NuOpDecomposer::new(Gate::ISwapPow(0.25))
        .with_max_iterations(80)
        .with_restarts(1);
    group.bench_function("quarter_iswap_k4", |b| {
        b.iter(|| quarter.fit(&target, 4, 11))
    });
    group.finish();
}

criterion_group!(benches, bench_weyl, bench_nuop);
criterion_main!(benches);
