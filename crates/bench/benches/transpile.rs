//! Criterion benchmarks for the transpilation pipeline (layout → routing →
//! basis translation) on representative (workload, topology, basis) points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snailqc_decompose::BasisGate;
use snailqc_topology::catalog;
use snailqc_transpiler::Pipeline;
use snailqc_workloads::Workload;

fn bench_routing_16q(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpile_16q");
    group.sample_size(20);
    let circuit = Workload::Qft.generate(16, 7);
    let cases = vec![
        ("heavy_hex_20", catalog::heavy_hex_20(), BasisGate::Cnot),
        (
            "square_lattice_16",
            catalog::square_lattice_16(),
            BasisGate::Syc,
        ),
        ("tree_20", catalog::tree_20(), BasisGate::SqrtISwap),
        ("corral12_16", catalog::corral12_16(), BasisGate::SqrtISwap),
        (
            "hypercube_16",
            catalog::hypercube_16(),
            BasisGate::SqrtISwap,
        ),
    ];
    for (name, graph, basis) in cases {
        let pipeline = Pipeline::builder().trials(2).translate_to(basis).build();
        group.bench_with_input(BenchmarkId::new("qft16", name), &graph, |b, g| {
            b.iter(|| pipeline.run(&circuit, g))
        });
    }
    group.finish();
}

fn bench_routing_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpile_84q");
    group.sample_size(10);
    let circuit = Workload::QuantumVolume.generate(32, 7);
    let cases = vec![
        ("heavy_hex_84", catalog::heavy_hex_84()),
        ("tree_84", catalog::tree_84()),
        ("hypercube_84", catalog::hypercube_84()),
    ];
    for (name, graph) in cases {
        let pipeline = Pipeline::builder()
            .trials(1)
            .translate_to(BasisGate::SqrtISwap)
            .build();
        group.bench_with_input(BenchmarkId::new("qv32", name), &graph, |b, g| {
            b.iter(|| pipeline.run(&circuit, g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing_16q, bench_routing_large);
criterion_main!(benches);
