//! Criterion benchmarks for topology construction and the Table 1/2 metrics.

use criterion::{criterion_group, criterion_main, Criterion};
use snailqc_topology::catalog;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_construction");
    group.bench_function("tree_84", |b| b.iter(catalog::tree_84));
    group.bench_function("tree_rr_84", |b| b.iter(catalog::tree_rr_84));
    group.bench_function("hypercube_84", |b| b.iter(catalog::hypercube_84));
    group.bench_function("heavy_hex_84", |b| b.iter(catalog::heavy_hex_84));
    group.bench_function("corral12_16", |b| b.iter(catalog::corral12_16));
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_metrics");
    let tree = catalog::tree_84();
    let heavy = catalog::heavy_hex_84();
    group.bench_function("metrics_tree_84", |b| b.iter(|| tree.metrics()));
    group.bench_function("metrics_heavy_hex_84", |b| b.iter(|| heavy.metrics()));
    group.bench_function("table1", |b| b.iter(catalog::table1));
    group.finish();
}

criterion_group!(benches, bench_construction, bench_metrics);
criterion_main!(benches);
