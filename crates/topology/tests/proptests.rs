//! Property-based tests for coupling graphs and the topology builders.

use proptest::prelude::*;
use snailqc_topology::builders;
use snailqc_topology::CouplingGraph;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn square_lattice_metrics_match_closed_forms(rows in 2usize..7, cols in 2usize..7) {
        let g = builders::square_lattice(rows, cols);
        prop_assert_eq!(g.num_qubits(), rows * cols);
        prop_assert_eq!(g.num_edges(), rows * (cols - 1) + cols * (rows - 1));
        prop_assert_eq!(g.diameter(), rows + cols - 2);
        prop_assert!(g.is_connected());
    }

    #[test]
    fn hypercube_is_regular_with_log_diameter(dim in 1u32..8) {
        let g = builders::hypercube(dim);
        prop_assert_eq!(g.num_qubits(), 1 << dim);
        prop_assert_eq!(g.diameter(), dim as usize);
        for q in 0..g.num_qubits() {
            prop_assert_eq!(g.degree(q), dim as usize);
        }
    }

    #[test]
    fn truncated_hypercube_stays_connected(n in 5usize..120) {
        let g = builders::hypercube_sized(n);
        prop_assert_eq!(g.num_qubits(), n);
        prop_assert!(g.is_connected());
    }

    #[test]
    fn hex_lattice_counts_follow_formula(rows in 1usize..5, cols in 1usize..6) {
        let g = builders::hex_lattice(rows, cols);
        prop_assert_eq!(g.num_qubits(), 2 * (rows + 1) * (cols + 1) - 2);
        prop_assert_eq!(g.num_edges(), 3 * rows * cols + 2 * rows + 2 * cols - 1);
        for q in 0..g.num_qubits() {
            prop_assert!(g.degree(q) >= 2 && g.degree(q) <= 3);
        }
    }

    #[test]
    fn heavy_hex_doubles_edges(rows in 1usize..4, cols in 1usize..5) {
        let hex = builders::hex_lattice(rows, cols);
        let heavy = builders::heavy_hex(rows, cols);
        prop_assert_eq!(heavy.num_qubits(), hex.num_qubits() + hex.num_edges());
        prop_assert_eq!(heavy.num_edges(), 2 * hex.num_edges());
        prop_assert!(heavy.is_connected());
    }

    #[test]
    fn trees_have_constant_small_diameter(levels in 1usize..3) {
        let g = builders::tree4(levels);
        let rr = builders::tree4_rr(levels);
        prop_assert_eq!(g.num_qubits(), rr.num_qubits());
        prop_assert_eq!(g.diameter(), 2 * levels + 1);
        prop_assert!(rr.diameter() <= g.diameter());
        prop_assert!(rr.average_distance() <= g.average_distance() + 1e-9);
    }

    #[test]
    fn corrals_are_connected_and_regular_without_wraparound(
        posts in 3usize..12, sa in 1usize..3, sb in 1usize..4,
    ) {
        prop_assume!(sa < posts && sb < posts);
        // Connectivity requires the strides to generate the whole post ring.
        fn gcd(a: usize, b: usize) -> usize {
            if b == 0 { a } else { gcd(b, a % b) }
        }
        prop_assume!(gcd(gcd(sa, sb), posts) == 1);
        let g = builders::corral(posts, sa, sb);
        prop_assert_eq!(g.num_qubits(), 2 * posts);
        prop_assert!(g.is_connected());
        // Vertex regularity holds whenever no fence wraps onto the antipodal
        // post (2·stride ≡ 0 mod posts makes opposite fences coincide and
        // breaks the symmetry).
        if (2 * sa) % posts != 0 && (2 * sb) % posts != 0 {
            let d0 = g.degree(0);
            for q in 0..g.num_qubits() {
                prop_assert_eq!(g.degree(q), d0, "qubit {} degree {} != {}", q, g.degree(q), d0);
            }
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_inequality(rows in 2usize..5, cols in 2usize..5) {
        let g = builders::lattice_alt_diagonals(rows, cols);
        let dm = g.distance_matrix();
        let n = g.num_qubits();
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(dm[a][b], dm[b][a]);
                for c in 0..n {
                    prop_assert!(dm[a][c] <= dm[a][b] + dm[b][c]);
                }
            }
        }
    }

    #[test]
    fn shortest_paths_have_length_matching_distance(seed in 0usize..100) {
        let g = builders::tree4(1);
        let n = g.num_qubits();
        let a = seed % n;
        let b = (seed * 7 + 3) % n;
        let dm = g.bfs_distances(a);
        let path = g.shortest_path(a, b).unwrap();
        prop_assert_eq!(path.len() - 1, dm[b]);
        for w in path.windows(2) {
            prop_assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn truncate_boundary_preserves_connectivity_and_size(target in 10usize..16) {
        let g = builders::square_lattice(4, 4);
        let t = g.truncate_boundary(target, "truncated");
        prop_assert_eq!(t.num_qubits(), target);
        prop_assert!(t.is_connected());
        prop_assert!(t.num_edges() <= g.num_edges());
    }

    #[test]
    fn induced_prefix_never_gains_edges(n in 2usize..16) {
        let g = builders::hypercube(4);
        let sub = g.induced_prefix(n, "prefix");
        prop_assert!(sub.num_edges() <= g.num_edges());
        for (a, b) in sub.edges() {
            prop_assert!(g.has_edge(a, b));
        }
    }

    #[test]
    fn average_distance_is_bounded_by_diameter(rows in 2usize..5, cols in 2usize..5) {
        let g: CouplingGraph = builders::square_lattice(rows, cols);
        let m = g.metrics();
        prop_assert!(m.avg_distance <= m.diameter as f64);
        prop_assert!(m.avg_distance >= 0.0);
    }
}
