//! Pins the heap-based Dijkstra against the retired O(n²) selection-loop
//! algorithm: on every catalog topology — uniform and calibrated — the two
//! must produce *bitwise-identical* distances (`f64 ==`, not tolerance),
//! because the router's weighted-distance matrix feeds SWAP scoring and any
//! drift would change routed circuits.

use snailqc_topology::{builders, catalog, CouplingGraph};

/// The selection-loop Dijkstra `CouplingGraph::weighted_distances` shipped
/// before the heap rewrite, kept verbatim as the reference semantics.
fn reference_weighted_distances(
    graph: &CouplingGraph,
    source: usize,
    cost: impl Fn(usize, usize) -> f64,
) -> Vec<f64> {
    let n = graph.num_qubits();
    let mut dist = vec![f64::INFINITY; n];
    let mut done = vec![false; n];
    dist[source] = 0.0;
    for _ in 0..n {
        let mut u = usize::MAX;
        let mut best = f64::INFINITY;
        for q in 0..n {
            if !done[q] && dist[q] < best {
                best = dist[q];
                u = q;
            }
        }
        if u == usize::MAX {
            break; // remaining nodes unreachable
        }
        done[u] = true;
        for v in graph.neighbors(u) {
            let next = dist[u] + cost(u, v);
            if next < dist[v] {
                dist[v] = next;
            }
        }
    }
    dist
}

fn assert_bitwise_equal(graph: &CouplingGraph, cost: impl Fn(usize, usize) -> f64 + Copy) {
    for source in 0..graph.num_qubits() {
        let heap = graph.weighted_distances(source, cost);
        let reference = reference_weighted_distances(graph, source, cost);
        for (q, (h, r)) in heap.iter().zip(&reference).enumerate() {
            assert!(
                h.to_bits() == r.to_bits(),
                "{}: dist[{source}][{q}] drifted: heap {h:?} vs reference {r:?}",
                graph.name()
            );
        }
    }
}

#[test]
fn heap_dijkstra_matches_selection_loop_on_the_full_catalog() {
    for name in catalog::names() {
        let graph = catalog::by_name(name).unwrap();
        // Unit costs (hop distances) …
        assert_bitwise_equal(&graph, |_, _| 1.0);
        // … and the router's noise-weighted costs on a calibrated copy.
        let calibrated = builders::calibrated(&graph, 1e-3, 1.2, 17);
        let weighted =
            |a: usize, b: usize| 1.0 + 0.5 * (-(1.0 - calibrated.edge_error(a, b)).ln()) / 1e-3;
        assert_bitwise_equal(&calibrated, weighted);
    }
}

#[test]
fn heap_dijkstra_matches_selection_loop_on_disconnected_graphs() {
    let g = CouplingGraph::from_edges("islands", 6, &[(0, 1), (1, 2), (4, 5)]);
    assert_bitwise_equal(&g, |_, _| 1.0);
    assert_bitwise_equal(&g, |a, b| (a + b) as f64 * 0.25 + 1.0);
}
