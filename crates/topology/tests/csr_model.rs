//! Property tests pinning the CSR `CouplingGraph` against a naive
//! set-and-map adjacency model: whatever order edges are inserted in, the
//! CSR graph must agree with the model on `neighbors` order, `edges` order,
//! `has_edge`, `edge_error`, and `edge_index` round-trips.

use proptest::prelude::*;
use snailqc_topology::{CouplingGraph, DEFAULT_EDGE_ERROR};
use std::collections::{BTreeMap, BTreeSet};

/// The pre-CSR representation: per-node sorted neighbor sets plus an
/// override map keyed by `(min, max)`.
#[derive(Default)]
struct NaiveGraph {
    adjacency: Vec<BTreeSet<usize>>,
    overrides: BTreeMap<(usize, usize), f64>,
}

impl NaiveGraph {
    fn new(n: usize) -> Self {
        Self {
            adjacency: vec![BTreeSet::new(); n],
            overrides: BTreeMap::new(),
        }
    }

    fn add_edge(&mut self, a: usize, b: usize) {
        if a != b {
            self.adjacency[a].insert(b);
            self.adjacency[b].insert(a);
        }
    }

    fn edges(&self) -> Vec<(usize, usize)> {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(a, nbrs)| nbrs.range(a + 1..).map(move |&b| (a, b)))
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_graph_agrees_with_the_naive_model(
        n in 3usize..12,
        raw_inserts in proptest::collection::vec((0usize..64, 0usize..64), 1..40),
        overrides in proptest::collection::vec((0usize..64, 1e-4f64..0.5), 1..6),
    ) {
        // Endpoints are drawn over a fixed range and folded into `0..n`, so
        // the insert list covers duplicates and arbitrary orders.
        let inserts: Vec<(usize, usize)> =
            raw_inserts.iter().map(|&(a, b)| (a % n, b % n)).collect();
        let mut csr = CouplingGraph::new("model", n);
        let mut naive = NaiveGraph::new(n);
        for &(a, b) in &inserts {
            csr.add_edge(a, b);
            naive.add_edge(a, b);
        }
        let edges = naive.edges();
        // Apply overrides to both (index into the current edge list).
        for &(pick, rate) in &overrides {
            if edges.is_empty() {
                break;
            }
            let (a, b) = edges[pick % edges.len()];
            csr.set_edge_error(a, b, rate);
            naive.overrides.insert((a, b), rate);
        }

        // Edge list: lexicographic, identical to the model's sorted-set walk.
        prop_assert_eq!(csr.edges().collect::<Vec<_>>(), edges.clone());
        prop_assert_eq!(csr.num_edges(), edges.len());

        // Neighbors: ascending, identical contents per node.
        for q in 0..n {
            let want: Vec<usize> = naive.adjacency[q].iter().copied().collect();
            prop_assert_eq!(csr.neighbors(q).collect::<Vec<_>>(), want);
            prop_assert_eq!(csr.degree(q), naive.adjacency[q].len());
        }

        // has_edge / edge_index / edge_error over the full pair grid.
        for a in 0..n {
            for b in 0..n {
                let is_edge = a != b && naive.adjacency[a].contains(&b);
                prop_assert_eq!(csr.has_edge(a, b), is_edge);
                match csr.edge_index(a, b) {
                    Some(idx) => {
                        prop_assert!(is_edge);
                        // Round-trips: the index is the lexicographic rank,
                        // and endpoints come back as (min, max).
                        prop_assert_eq!(csr.edge_endpoints(idx), (a.min(b), a.max(b)));
                        prop_assert_eq!(edges[idx], (a.min(b), a.max(b)));
                        let want = naive
                            .overrides
                            .get(&(a.min(b), a.max(b)))
                            .copied()
                            .unwrap_or(DEFAULT_EDGE_ERROR);
                        prop_assert_eq!(csr.edge_error(a, b), want);
                        prop_assert_eq!(csr.edge_error_at(idx), want);
                    }
                    None => prop_assert!(!is_edge),
                }
            }
        }

        // neighbors_with_edge_ids is neighbors zipped with edge_index.
        for q in 0..n {
            for (v, id) in csr.neighbors_with_edge_ids(q) {
                prop_assert_eq!(csr.edge_index(q, v), Some(id));
            }
        }

        // Uniformity flag matches the model's override semantics.
        let uniform = {
            let vals: Vec<f64> = naive.overrides.values().copied().collect();
            match vals.first() {
                None => true,
                Some(&first) => {
                    vals.iter().all(|&r| r == first)
                        && (first == DEFAULT_EDGE_ERROR
                            || naive.overrides.len() == edges.len())
                }
            }
        };
        prop_assert_eq!(csr.edge_errors_uniform(), uniform);
    }
}
