//! Property tests pinning the compact `u16` hop matrix (and the weighted
//! rows) to the legacy `Vec<Vec<usize>>` / `Vec<Vec<f64>>` all-pairs
//! matrices on arbitrary graphs — connected or not, calibrated or not,
//! in both dense and lazy storage modes.

use proptest::prelude::*;
use snailqc_topology::distance::{HopMatrix, WeightedRows, UNREACHABLE};
use snailqc_topology::{builders, CouplingGraph};

/// Deterministic pseudo-random graph on `n` qubits: edge density and
/// connectivity vary with the seed, so disconnected graphs show up often.
fn arbitrary_graph(n: usize, seed: u64, density_pct: u64) -> CouplingGraph {
    let mut g = CouplingGraph::new(format!("prop-{n}-{seed}"), n);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for a in 0..n {
        for b in (a + 1)..n {
            if next() % 100 < density_pct {
                g.add_edge(a, b);
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hop_matrix_matches_legacy_distance_matrix(
        n in 2usize..24, seed in 0u64..1000, density in 5u64..40,
    ) {
        let mut g = arbitrary_graph(n, seed, density);
        if g.num_edges() > 0 {
            builders::calibrate_edge_errors(&mut g, 1e-3, 1.5, seed);
        }
        let legacy = g.distance_matrix();
        let dense = HopMatrix::new_dense(&g);
        let lazy = HopMatrix::new_lazy(&g);
        for (a, legacy_row) in legacy.iter().enumerate() {
            for (b, &expect) in legacy_row.iter().enumerate() {
                for m in [&dense, &lazy] {
                    let got = m.get(&g, a, b);
                    if expect == usize::MAX {
                        prop_assert_eq!(got, UNREACHABLE);
                    } else {
                        prop_assert_eq!(got as usize, expect);
                    }
                }
            }
        }
    }

    #[test]
    fn weighted_rows_match_legacy_weighted_matrix(
        n in 2usize..16, seed in 0u64..1000, density in 10u64..50,
    ) {
        let mut g = arbitrary_graph(n, seed, density);
        if g.num_edges() > 0 {
            builders::calibrate_edge_errors(&mut g, 1e-3, 2.0, seed);
        }
        let cost = |a: usize, b: usize| {
            if g.has_edge(a, b) { 1.0 + 100.0 * g.edge_error(a, b) } else { 1.0 }
        };
        let legacy = g.weighted_distance_matrix(cost);
        let rows = WeightedRows::new(&g, cost);
        for (a, expect) in legacy.iter().enumerate() {
            // Bitwise equality, including infinities on disconnected pairs.
            prop_assert_eq!(rows.row(&g, &cost, a), expect.as_slice());
        }
    }

    #[test]
    fn connected_components_partition_the_qubits(
        n in 1usize..24, seed in 0u64..1000, density in 0u64..30,
    ) {
        let g = arbitrary_graph(n, seed, density);
        let comps = g.connected_components();
        let mut all: Vec<usize> = comps.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>(), "exact partition");
        // Sizes descend, and intra-component pairs are reachable while
        // cross-component pairs are not.
        for w in comps.windows(2) {
            prop_assert!(w[0].len() >= w[1].len());
        }
        let hops = HopMatrix::new_dense(&g);
        let mut comp_of = vec![usize::MAX; n];
        for (ci, members) in comps.iter().enumerate() {
            for &q in members {
                comp_of[q] = ci;
            }
        }
        for a in 0..n {
            for b in 0..n {
                let reachable = hops.get(&g, a, b) != UNREACHABLE;
                prop_assert_eq!(reachable, comp_of[a] == comp_of[b]);
            }
        }
    }
}
