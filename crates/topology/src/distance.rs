//! Compact, lazily materialized shortest-path state for kiloqubit devices.
//!
//! The router's distance lookups used to live in `Vec<Vec<usize>>` /
//! `Vec<Vec<f64>>` all-pairs matrices: simple, but O(n²·8) bytes per matrix
//! and always fully materialized. At the catalog's kiloqubit end
//! (`grid_625`, `hypercube_1024`) that is tens of megabytes of `usize`/`f64`
//! per device for distances that fit comfortably in a `u16`, most of whose
//! rows a small program never reads.
//!
//! This module provides the replacements:
//!
//! * [`HopMatrix`] — BFS hop counts in one flat `u16` allocation
//!   ([`UNREACHABLE`] sentinel), 4× smaller than the old `usize` rows.
//! * [`WeightedRows`] — weighted (Dijkstra) distances as flat `f64` rows.
//!
//! Both switch from eager whole-matrix materialization to **on-demand
//! per-source rows** once the device reaches [`LAZY_ROW_THRESHOLD`] qubits:
//! each row is computed on first use (synchronized with a [`OnceLock`], so
//! parallel routing trials race safely and compute it once) and retained.
//! A 24-qubit program routed on the 1024-qubit hypercube only ever pays for
//! the rows its placed qubits touch. Row values are identical in either
//! mode — laziness changes *when* a row is computed, never *what* it holds —
//! so routed output is bitwise-independent of the storage mode.

use crate::graph::CouplingGraph;
use std::sync::OnceLock;

/// Hop distance marking an unreachable pair in a [`HopMatrix`].
pub const UNREACHABLE: u16 = u16::MAX;

/// Device size (qubits) at which [`HopMatrix::new`] and [`WeightedRows::new`]
/// switch from one eagerly computed flat matrix to on-demand per-source rows.
///
/// Below it, devices are small enough that the whole matrix is at most a few
/// hundred kilobytes and every row tends to get used; above it, eager
/// materialization is the O(n²) cost the kiloqubit catalog entries cannot
/// afford when a program only occupies a corner of the device.
pub const LAZY_ROW_THRESHOLD: usize = 256;

/// All-pairs BFS hop distances in compact `u16` storage.
///
/// Dense mode is a single flat `n × n` allocation; lazy mode holds one
/// [`OnceLock`] slot per source row and fills rows on first access. The
/// coupling graph is passed at access time (rows are computed from it on
/// demand); callers must pass the graph the matrix was built for —
/// `snailqc_transpiler::RoutingCache` maintains that pairing per device.
#[derive(Debug)]
pub struct HopMatrix {
    n: usize,
    storage: HopStorage,
}

#[derive(Debug)]
enum HopStorage {
    /// One flat row-major allocation, fully computed up front.
    Dense(Vec<u16>),
    /// Per-source rows, each computed on first use.
    Lazy(Box<[OnceLock<Box<[u16]>>]>),
}

impl HopMatrix {
    /// Builds the hop matrix for `graph`, choosing dense storage below
    /// [`LAZY_ROW_THRESHOLD`] qubits and lazy per-source rows at or above it.
    pub fn new(graph: &CouplingGraph) -> Self {
        if graph.num_qubits() >= LAZY_ROW_THRESHOLD {
            Self::new_lazy(graph)
        } else {
            Self::new_dense(graph)
        }
    }

    /// Builds the fully materialized flat matrix (one allocation).
    pub fn new_dense(graph: &CouplingGraph) -> Self {
        let n = graph.num_qubits();
        let mut data = vec![UNREACHABLE; n * n];
        for (source, row) in data.chunks_mut(n.max(1)).enumerate().take(n) {
            graph.bfs_hops_into(source, row);
        }
        Self {
            n,
            storage: HopStorage::Dense(data),
        }
    }

    /// Builds the lazy per-source-row form (rows computed on first access).
    pub fn new_lazy(graph: &CouplingGraph) -> Self {
        let n = graph.num_qubits();
        let rows: Vec<OnceLock<Box<[u16]>>> = (0..n).map(|_| OnceLock::new()).collect();
        Self {
            n,
            storage: HopStorage::Lazy(rows.into_boxed_slice()),
        }
    }

    /// Number of qubits the matrix covers.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// True when rows are materialized on demand rather than up front.
    pub fn is_lazy(&self) -> bool {
        matches!(self.storage, HopStorage::Lazy(_))
    }

    /// The hop-distance row of `source`, computing it on first use in lazy
    /// mode. `graph` must be the graph the matrix was built for.
    #[inline]
    pub fn row(&self, graph: &CouplingGraph, source: usize) -> &[u16] {
        debug_assert_eq!(graph.num_qubits(), self.n, "hop matrix/graph mismatch");
        match &self.storage {
            HopStorage::Dense(data) => &data[source * self.n..(source + 1) * self.n],
            HopStorage::Lazy(rows) => rows[source].get_or_init(|| {
                let mut row = vec![UNREACHABLE; self.n].into_boxed_slice();
                graph.bfs_hops_into(source, &mut row);
                row
            }),
        }
    }

    /// Hop distance from `a` to `b` ([`UNREACHABLE`] when disconnected).
    #[inline]
    pub fn get(&self, graph: &CouplingGraph, a: usize, b: usize) -> u16 {
        self.row(graph, a)[b]
    }

    /// Number of rows currently materialized (`n` in dense mode).
    pub fn materialized_rows(&self) -> usize {
        match &self.storage {
            HopStorage::Dense(_) => self.n,
            HopStorage::Lazy(rows) => rows.iter().filter(|r| r.get().is_some()).count(),
        }
    }

    /// Bytes of distance payload currently resident (excluding per-row
    /// bookkeeping) — what the perf harness reports as peak matrix bytes.
    pub fn resident_bytes(&self) -> usize {
        self.materialized_rows() * self.n * std::mem::size_of::<u16>()
    }
}

/// Weighted (Dijkstra) shortest-path distances as flat `f64` rows — the
/// scoring matrix of noise-aware routing.
///
/// Same storage policy as [`HopMatrix`]: one flat allocation below
/// [`LAZY_ROW_THRESHOLD`] qubits, on-demand per-source rows above it. The
/// per-edge cost function is supplied at access time; callers must pass the
/// same (deterministic) cost function for every access, which is what makes
/// a lazily computed row identical to its eagerly computed counterpart.
#[derive(Debug)]
pub struct WeightedRows {
    n: usize,
    storage: WeightedStorage,
}

#[derive(Debug)]
enum WeightedStorage {
    Dense(Vec<f64>),
    Lazy(Box<[OnceLock<Box<[f64]>>]>),
}

impl WeightedRows {
    /// Builds the weighted-distance store for `graph` under `cost`, choosing
    /// the storage mode by [`LAZY_ROW_THRESHOLD`]. In lazy mode nothing is
    /// computed here; rows materialize on first [`WeightedRows::row`] call.
    pub fn new(graph: &CouplingGraph, cost: impl Fn(usize, usize) -> f64) -> Self {
        let n = graph.num_qubits();
        if n >= LAZY_ROW_THRESHOLD {
            let rows: Vec<OnceLock<Box<[f64]>>> = (0..n).map(|_| OnceLock::new()).collect();
            Self {
                n,
                storage: WeightedStorage::Lazy(rows.into_boxed_slice()),
            }
        } else {
            let mut data = Vec::with_capacity(n * n);
            for source in 0..n {
                data.extend_from_slice(&graph.weighted_distances(source, &cost));
            }
            Self {
                n,
                storage: WeightedStorage::Dense(data),
            }
        }
    }

    /// Number of qubits the store covers.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// True when rows are materialized on demand rather than up front.
    pub fn is_lazy(&self) -> bool {
        matches!(self.storage, WeightedStorage::Lazy(_))
    }

    /// The weighted-distance row of `source`, computing it via Dijkstra
    /// under `cost` on first use in lazy mode.
    #[inline]
    pub fn row(
        &self,
        graph: &CouplingGraph,
        cost: &impl Fn(usize, usize) -> f64,
        source: usize,
    ) -> &[f64] {
        debug_assert_eq!(graph.num_qubits(), self.n, "weighted rows/graph mismatch");
        match &self.storage {
            WeightedStorage::Dense(data) => &data[source * self.n..(source + 1) * self.n],
            WeightedStorage::Lazy(rows) => rows[source]
                .get_or_init(|| graph.weighted_distances(source, cost).into_boxed_slice()),
        }
    }

    /// Weighted distance from `a` to `b` (`f64::INFINITY` when disconnected).
    #[inline]
    pub fn get(
        &self,
        graph: &CouplingGraph,
        cost: &impl Fn(usize, usize) -> f64,
        a: usize,
        b: usize,
    ) -> f64 {
        self.row(graph, cost, a)[b]
    }

    /// Number of rows currently materialized (`n` in dense mode).
    pub fn materialized_rows(&self) -> usize {
        match &self.storage {
            WeightedStorage::Dense(_) => self.n,
            WeightedStorage::Lazy(rows) => rows.iter().filter(|r| r.get().is_some()).count(),
        }
    }

    /// Bytes of distance payload currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.materialized_rows() * self.n * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn dense_and_lazy_hop_rows_match_legacy_bfs() {
        let g = builders::square_lattice(4, 5);
        let dense = HopMatrix::new_dense(&g);
        let lazy = HopMatrix::new_lazy(&g);
        assert!(!dense.is_lazy() && lazy.is_lazy());
        for s in 0..g.num_qubits() {
            let legacy = g.bfs_distances(s);
            for (t, &expect) in legacy.iter().enumerate() {
                assert_eq!(dense.get(&g, s, t) as usize, expect);
                assert_eq!(lazy.get(&g, s, t) as usize, expect);
            }
        }
        assert_eq!(dense.materialized_rows(), g.num_qubits());
        assert_eq!(lazy.materialized_rows(), g.num_qubits());
    }

    #[test]
    fn lazy_mode_materializes_only_touched_rows() {
        let g = builders::square_lattice(3, 4);
        let m = HopMatrix::new_lazy(&g);
        assert_eq!(m.materialized_rows(), 0);
        assert_eq!(m.resident_bytes(), 0);
        m.row(&g, 5);
        m.row(&g, 5);
        m.row(&g, 7);
        assert_eq!(m.materialized_rows(), 2);
        assert_eq!(m.resident_bytes(), 2 * 12 * 2);
    }

    #[test]
    fn unreachable_pairs_carry_the_sentinel() {
        let g = CouplingGraph::from_edges("islands", 4, &[(0, 1), (2, 3)]);
        let m = HopMatrix::new(&g);
        assert_eq!(m.get(&g, 0, 1), 1);
        assert_eq!(m.get(&g, 0, 2), UNREACHABLE);
        assert_eq!(m.get(&g, 3, 1), UNREACHABLE);
    }

    #[test]
    fn threshold_picks_the_storage_mode() {
        assert!(!HopMatrix::new(&builders::line(8)).is_lazy());
        assert!(HopMatrix::new(&builders::line(LAZY_ROW_THRESHOLD)).is_lazy());
    }

    #[test]
    fn weighted_rows_match_weighted_distances_in_both_modes() {
        let g = builders::hypercube(3);
        let cost = |a: usize, b: usize| 1.0 + 0.1 * ((a + b) % 3) as f64;
        let eager = g.weighted_distance_matrix(cost);
        let dense = WeightedRows::new(&g, cost);
        assert!(!dense.is_lazy());
        // A hand-built lazy instance must produce bit-identical rows.
        let lazy = WeightedRows {
            n: g.num_qubits(),
            storage: WeightedStorage::Lazy(
                (0..g.num_qubits())
                    .map(|_| OnceLock::new())
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
            ),
        };
        for (s, expect) in eager.iter().enumerate() {
            assert_eq!(dense.row(&g, &cost, s), expect.as_slice());
            assert_eq!(lazy.row(&g, &cost, s), expect.as_slice());
        }
    }
}
