//! # snailqc-topology
//!
//! Qubit coupling topologies for the `snailqc` workspace.
//!
//! The paper's central argument is that the SNAIL modulator unlocks coupling
//! graphs — modular 4-ary Trees, Round-Robin Trees and hypercube-inspired
//! Corrals — that are far better connected than the lattices shipped by IBM
//! (heavy-hex) and Google (square lattice), and that this connectivity
//! directly reduces SWAP overhead. This crate provides:
//!
//! * [`graph::CouplingGraph`] — an undirected coupling graph with BFS
//!   shortest paths, error-weighted Dijkstra distances, per-edge gate error
//!   rates (uniform by default), diameter / average-distance /
//!   average-connectivity metrics (the columns of Tables 1 and 2), and
//!   truncation helpers.
//! * [`builders`] — parametric generators for every topology family: square
//!   lattice, lattice with alternating diagonals, hex and heavy-hex lattices,
//!   hypercubes, SNAIL trees and corrals — plus a seeded calibrated-device
//!   noise sampler ([`builders::calibrate_edge_errors`]).
//! * [`catalog`] — the paper's named instances (`Tree-20`, `Corral1,2-16`,
//!   `Heavy-Hex-84`, …) and [`catalog::TopologyKind`], the registry used by
//!   the experiment harness.
//! * [`distance`] — compact all-pairs distance state for kiloqubit devices:
//!   flat `u16` hop matrices and flat `f64` weighted rows, with on-demand
//!   per-source materialization above [`distance::LAZY_ROW_THRESHOLD`].

#![warn(missing_docs)]

pub mod builders;
pub mod catalog;
pub mod distance;
pub mod graph;

pub use catalog::TopologyKind;
pub use distance::{HopMatrix, WeightedRows, LAZY_ROW_THRESHOLD, UNREACHABLE};
pub use graph::{CouplingGraph, TopologyMetrics, DEFAULT_EDGE_ERROR};
