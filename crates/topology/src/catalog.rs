//! The paper's named topology instances (Tables 1 and 2) and a small registry
//! used by the experiment harness and the benchmark binaries.

use crate::builders;
use crate::graph::{CouplingGraph, TopologyMetrics};

/// Identifies one of the paper's topology families at a nominal size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum TopologyKind {
    /// IBM-style heavy-hex lattice (Fig. 2b).
    HeavyHex,
    /// Plain hexagonal (honeycomb) lattice (Fig. 2d).
    HexLattice,
    /// Square lattice (Fig. 2a).
    SquareLattice,
    /// Square lattice with alternating diagonals (Fig. 2c).
    LatticeAltDiagonals,
    /// Hypercube / truncated hypercube (Fig. 3).
    Hypercube,
    /// SNAIL modular 4-ary tree (Fig. 7a / Fig. 8).
    Tree,
    /// SNAIL round-robin 4-ary tree (Fig. 7b).
    TreeRoundRobin,
    /// SNAIL Corral with strides (1, 1) (Fig. 9b).
    Corral11,
    /// SNAIL Corral with strides (1, 2) (Fig. 9d).
    Corral12,
}

impl TopologyKind {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            TopologyKind::HeavyHex => "Heavy-Hex",
            TopologyKind::HexLattice => "Hex-Lattice",
            TopologyKind::SquareLattice => "Square-Lattice",
            TopologyKind::LatticeAltDiagonals => "Lattice+AltDiagonals",
            TopologyKind::Hypercube => "Hypercube",
            TopologyKind::Tree => "Tree",
            TopologyKind::TreeRoundRobin => "Tree-RR",
            TopologyKind::Corral11 => "Corral1,1",
            TopologyKind::Corral12 => "Corral1,2",
        }
    }

    /// True for the topologies realizable with SNAIL modulators (§4.3).
    pub fn is_snail_topology(&self) -> bool {
        matches!(
            self,
            TopologyKind::Tree
                | TopologyKind::TreeRoundRobin
                | TopologyKind::Corral11
                | TopologyKind::Corral12
        )
    }

    /// Builds the small (16–20 qubit, Table 1) instance of this topology.
    pub fn build_small(&self) -> CouplingGraph {
        match self {
            TopologyKind::HeavyHex => heavy_hex_20(),
            TopologyKind::HexLattice => hex_lattice_20(),
            TopologyKind::SquareLattice => square_lattice_16(),
            TopologyKind::LatticeAltDiagonals => lattice_alt_diagonals_16(),
            TopologyKind::Hypercube => hypercube_16(),
            TopologyKind::Tree => tree_20(),
            TopologyKind::TreeRoundRobin => tree_rr_20(),
            TopologyKind::Corral11 => corral11_16(),
            TopologyKind::Corral12 => corral12_16(),
        }
    }

    /// Builds the large (84 qubit, Table 2) instance of this topology.
    ///
    /// The Corral designs are not scaled past 16 qubits in the paper (the
    /// hypercube stands in for them, §5); requesting a large Corral returns
    /// the hypercube analogue used there.
    pub fn build_large(&self) -> CouplingGraph {
        match self {
            TopologyKind::HeavyHex => heavy_hex_84(),
            TopologyKind::HexLattice => hex_lattice_84(),
            TopologyKind::SquareLattice => square_lattice_84(),
            TopologyKind::LatticeAltDiagonals => lattice_alt_diagonals_84(),
            TopologyKind::Hypercube | TopologyKind::Corral11 | TopologyKind::Corral12 => {
                hypercube_84()
            }
            TopologyKind::Tree => tree_84(),
            TopologyKind::TreeRoundRobin => tree_rr_84(),
        }
    }

    /// Builds the instance of this topology with at least `min_qubits`
    /// physical qubits, choosing the small or large size class.
    pub fn build_at_least(&self, min_qubits: usize) -> CouplingGraph {
        let small = self.build_small();
        if small.num_qubits() >= min_qubits {
            small
        } else {
            self.build_large()
        }
    }

    /// Every topology family in the paper.
    pub fn all() -> [TopologyKind; 9] {
        [
            TopologyKind::HeavyHex,
            TopologyKind::HexLattice,
            TopologyKind::SquareLattice,
            TopologyKind::LatticeAltDiagonals,
            TopologyKind::Hypercube,
            TopologyKind::Tree,
            TopologyKind::TreeRoundRobin,
            TopologyKind::Corral11,
            TopologyKind::Corral12,
        ]
    }
}

// ---------------------------------------------------------------------------
// Table 1 instances (16–20 qubits)
// ---------------------------------------------------------------------------

/// 16-qubit square lattice (4×4), Table 1.
pub fn square_lattice_16() -> CouplingGraph {
    let mut g = builders::square_lattice(4, 4);
    g.set_name("Square-Lattice-16");
    g
}

/// 16-qubit hypercube (4-dimensional), Table 1.
pub fn hypercube_16() -> CouplingGraph {
    let mut g = builders::hypercube(4);
    g.set_name("Hypercube-16");
    g
}

/// 20-qubit SNAIL modular tree, Table 1.
pub fn tree_20() -> CouplingGraph {
    let mut g = builders::tree4(1);
    g.set_name("Tree-20");
    g
}

/// 20-qubit SNAIL round-robin tree, Table 1.
pub fn tree_rr_20() -> CouplingGraph {
    let mut g = builders::tree4_rr(1);
    g.set_name("Tree-RR-20");
    g
}

/// 16-qubit Corral with strides (1, 1), Table 1.
pub fn corral11_16() -> CouplingGraph {
    let mut g = builders::corral(8, 1, 1);
    g.set_name("Corral1,1-16");
    g
}

/// 16-qubit Corral₁,₂, Table 1.
///
/// The paper describes the second fence as reaching the "second-nearest
/// neighbor"; the Table-1 metrics it reports for Corral₁,₂ (diameter 2,
/// average distance 1.5, average connectivity 6.0) are reproduced exactly by
/// a long-stride second fence (`corral(8, 1, 3)`), which is the instance
/// returned here. The literal stride-2 variant (`builders::corral(8, 1, 2)`)
/// has diameter 3 and is available separately.
pub fn corral12_16() -> CouplingGraph {
    let mut g = builders::corral(8, 1, 3);
    g.set_name("Corral1,2-16");
    g
}

/// 20-qubit heavy-hex fragment, Table 1.
///
/// IBM does not ship a 20-qubit heavy-hex device and the paper does not give
/// the exact fragment it used; we use two heavy hexagons (12-cycles) fused on
/// a four-qubit path, the 20-qubit fragment whose metrics are closest to the
/// paper's Table 1 row (diameter 8 and average connectivity 2.1 match
/// exactly; average distance is 4.05 vs the reported 3.77 — see
/// EXPERIMENTS.md).
pub fn heavy_hex_20() -> CouplingGraph {
    let mut edges: Vec<(usize, usize)> = (0..12).map(|i| (i, (i + 1) % 12)).collect();
    // Second 12-cycle sharing the path 0–1–2–3 with the first.
    edges.push((3, 12));
    edges.extend((12..19).map(|i| (i, i + 1)));
    edges.push((19, 0));
    CouplingGraph::from_edges("Heavy-Hex-20", 20, &edges)
}

/// 20-qubit hex-lattice fragment, Table 1.
pub fn hex_lattice_20() -> CouplingGraph {
    let base = builders::hex_lattice(2, 3);
    let mut g = base.truncate_boundary(20, "Hex-Lattice-20");
    g.set_name("Hex-Lattice-20");
    g
}

// ---------------------------------------------------------------------------
// Table 2 instances (84 qubits)
// ---------------------------------------------------------------------------

/// 84-qubit square lattice (7×12), Table 2.
pub fn square_lattice_84() -> CouplingGraph {
    let mut g = builders::square_lattice(7, 12);
    g.set_name("Square-Lattice-84");
    g
}

/// 84-qubit lattice with alternating diagonals (7×12), Table 2.
pub fn lattice_alt_diagonals_84() -> CouplingGraph {
    let mut g = builders::lattice_alt_diagonals(7, 12);
    g.set_name("Lattice+AltDiagonals-84");
    g
}

/// 84-qubit truncated hypercube (7-cube restricted to 84 vertices), Table 2.
pub fn hypercube_84() -> CouplingGraph {
    let mut g = builders::hypercube_sized(84);
    g.set_name("Hypercube-84");
    g
}

/// 84-qubit SNAIL modular tree (four levels), Table 2.
pub fn tree_84() -> CouplingGraph {
    let mut g = builders::tree4(2);
    g.set_name("Tree-84");
    g
}

/// 84-qubit SNAIL round-robin tree, Table 2.
pub fn tree_rr_84() -> CouplingGraph {
    let mut g = builders::tree4_rr(2);
    g.set_name("Tree-RR-84");
    g
}

/// 84-qubit heavy-hex fragment (3×4 hexagons truncated), Table 2.
pub fn heavy_hex_84() -> CouplingGraph {
    let base = builders::heavy_hex(3, 4);
    let mut g = base.truncate_boundary(84, "Heavy-Hex-84");
    g.set_name("Heavy-Hex-84");
    g
}

/// 84-qubit hex-lattice fragment, Table 2.
pub fn hex_lattice_84() -> CouplingGraph {
    let base = builders::hex_lattice(4, 8);
    let mut g = base.truncate_boundary(84, "Hex-Lattice-84");
    g.set_name("Hex-Lattice-84");
    g
}

// ---------------------------------------------------------------------------
// Name-based registry (CLI / external tooling entry point)
// ---------------------------------------------------------------------------

/// A nullary constructor for one catalog instance.
type TopologyBuilder = fn() -> CouplingGraph;

/// Every named catalog instance as `(canonical-name, builder)`.
const REGISTRY: [(&str, TopologyBuilder); 16] = [
    ("heavy-hex-20", heavy_hex_20),
    ("hex-lattice-20", hex_lattice_20),
    ("square-lattice-16", square_lattice_16),
    ("lattice-alt-diagonals-16", lattice_alt_diagonals_16),
    ("hypercube-16", hypercube_16),
    ("tree-20", tree_20),
    ("tree-rr-20", tree_rr_20),
    ("corral11-16", corral11_16),
    ("corral12-16", corral12_16),
    ("heavy-hex-84", heavy_hex_84),
    ("hex-lattice-84", hex_lattice_84),
    ("square-lattice-84", square_lattice_84),
    ("lattice-alt-diagonals-84", lattice_alt_diagonals_84),
    ("hypercube-84", hypercube_84),
    ("tree-84", tree_84),
    ("tree-rr-84", tree_rr_84),
];

use snailqc_util::names_match;

/// The canonical kebab-case names of every catalog instance.
pub fn names() -> Vec<&'static str> {
    REGISTRY.iter().map(|(name, _)| *name).collect()
}

/// Builds a catalog instance by name.
///
/// Matching is forgiving: case, punctuation and separators are ignored, so
/// `corral11-16`, `Corral1,1-16` and `CORRAL_1_1_16` all resolve to the same
/// instance. Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<CouplingGraph> {
    REGISTRY
        .iter()
        .find(|(canonical, _)| names_match(canonical, name))
        .map(|(_, build)| build())
}

/// 16-qubit lattice with alternating diagonals (4×4), Table 1.
pub fn lattice_alt_diagonals_16() -> CouplingGraph {
    let mut g = builders::lattice_alt_diagonals(4, 4);
    g.set_name("Lattice+AltDiagonals-16");
    g
}

/// Reproduces the rows of the paper's Table 1 (small machines).
pub fn table1() -> Vec<(String, TopologyMetrics)> {
    [
        heavy_hex_20(),
        hex_lattice_20(),
        square_lattice_16(),
        tree_20(),
        tree_rr_20(),
        corral11_16(),
        corral12_16(),
        hypercube_16(),
    ]
    .into_iter()
    .map(|g| (g.name().to_string(), g.metrics()))
    .collect()
}

/// Reproduces the rows of the paper's Table 2 (84-qubit machines).
pub fn table2() -> Vec<(String, TopologyMetrics)> {
    [
        heavy_hex_84(),
        hex_lattice_84(),
        square_lattice_84(),
        lattice_alt_diagonals_84(),
        tree_84(),
        tree_rr_84(),
        hypercube_84(),
    ]
    .into_iter()
    .map(|g| (g.name().to_string(), g.metrics()))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_small_instances_build_and_connect() {
        for kind in TopologyKind::all() {
            let g = kind.build_small();
            assert!(g.is_connected(), "{}", g.name());
            assert!(g.num_qubits() >= 16 && g.num_qubits() <= 20, "{}", g.name());
        }
    }

    #[test]
    fn all_large_instances_build_and_connect() {
        for kind in TopologyKind::all() {
            let g = kind.build_large();
            assert!(g.is_connected(), "{}", g.name());
            assert_eq!(g.num_qubits(), 84, "{}", g.name());
        }
    }

    #[test]
    fn heavy_hex_20_is_sparse_and_wide() {
        // Paper Table 1: 20 qubits, diameter 8, avgD 3.77, avgC 2.1. The exact
        // fragment is not published; assert the qualitative regime.
        let g = heavy_hex_20();
        let m = g.metrics();
        assert_eq!(m.qubits, 20);
        assert!(m.avg_connectivity <= 2.3, "avgC = {}", m.avg_connectivity);
        assert!(m.diameter >= 7, "diameter = {}", m.diameter);
        assert!(m.avg_distance > 3.0, "avgD = {}", m.avg_distance);
    }

    #[test]
    fn heavy_hex_84_is_sparse_and_wide() {
        // Paper Table 2: diameter 21, avgD 8.47, avgC 2.26.
        let g = heavy_hex_84();
        let m = g.metrics();
        assert_eq!(m.qubits, 84);
        assert!(m.avg_connectivity <= 2.4, "avgC = {}", m.avg_connectivity);
        assert!(m.diameter >= 15, "diameter = {}", m.diameter);
        assert!(m.avg_distance > 6.5, "avgD = {}", m.avg_distance);
    }

    #[test]
    fn hex_lattice_instances_sit_between_heavy_hex_and_square() {
        let small = hex_lattice_20().metrics();
        assert_eq!(small.qubits, 20);
        assert!(small.avg_connectivity > heavy_hex_20().metrics().avg_connectivity);
        assert!(small.avg_connectivity < square_lattice_16().metrics().avg_connectivity);
        let large = hex_lattice_84().metrics();
        assert_eq!(large.qubits, 84);
        assert!(large.avg_connectivity > heavy_hex_84().metrics().avg_connectivity);
        assert!(large.avg_connectivity < square_lattice_84().metrics().avg_connectivity);
    }

    #[test]
    fn table1_orderings_match_paper() {
        // The qualitative Table-1 story: SNAIL topologies have much lower
        // average distance and diameter than the lattice baselines.
        let t1: std::collections::HashMap<String, TopologyMetrics> = table1().into_iter().collect();
        let hh = t1["Heavy-Hex-20"];
        let tree = t1["Tree-20"];
        let corral12 = t1["Corral1,2-16"];
        assert!(tree.avg_distance < hh.avg_distance);
        assert!(corral12.avg_distance < tree.avg_distance);
        assert!(tree.diameter < hh.diameter);
        assert!(corral12.avg_connectivity > hh.avg_connectivity);
    }

    #[test]
    fn table2_orderings_match_paper() {
        let t2: std::collections::HashMap<String, TopologyMetrics> = table2().into_iter().collect();
        let hh = t2["Heavy-Hex-84"];
        let sq = t2["Square-Lattice-84"];
        let tree = t2["Tree-84"];
        let rr = t2["Tree-RR-84"];
        let hyper = t2["Hypercube-84"];
        assert!(sq.avg_distance < hh.avg_distance);
        assert!(tree.avg_distance < sq.avg_distance);
        assert!(rr.avg_distance < tree.avg_distance);
        assert!(hyper.avg_distance < tree.avg_distance);
        assert!(hyper.diameter < sq.diameter);
    }

    #[test]
    fn registry_resolves_every_canonical_name() {
        for name in names() {
            let g = by_name(name).unwrap_or_else(|| panic!("`{name}` did not resolve"));
            assert!(g.is_connected(), "{name}");
        }
    }

    #[test]
    fn registry_matching_is_forgiving() {
        assert_eq!(by_name("corral11-16").unwrap().name(), "Corral1,1-16");
        assert_eq!(by_name("Corral1,1-16").unwrap().name(), "Corral1,1-16");
        assert_eq!(by_name("CORRAL_1_1_16").unwrap().name(), "Corral1,1-16");
        assert_eq!(by_name("Tree-RR-84").unwrap().name(), "Tree-RR-84");
        assert_eq!(
            by_name("Lattice+AltDiagonals-84").unwrap().name(),
            "Lattice+AltDiagonals-84"
        );
        assert!(by_name("no-such-device").is_none());
    }

    #[test]
    fn labels_are_paper_legends() {
        assert_eq!(TopologyKind::TreeRoundRobin.label(), "Tree-RR");
        assert_eq!(TopologyKind::Corral12.label(), "Corral1,2");
        assert!(TopologyKind::Corral11.is_snail_topology());
        assert!(!TopologyKind::HeavyHex.is_snail_topology());
    }
}
