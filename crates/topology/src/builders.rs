//! Generators for every coupling topology studied in the paper.
//!
//! Baselines: square lattice, lattice with alternating diagonals, hex lattice,
//! heavy-hex lattice (IBM), hypercube. SNAIL-enabled designs (§4.3): the
//! modular 4-ary Tree, the Round-Robin Tree, and the Corral family.

use crate::graph::CouplingGraph;
use std::collections::BTreeMap;

/// A path (line) of `n` qubits.
pub fn line(n: usize) -> CouplingGraph {
    let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    CouplingGraph::from_edges(format!("line-{n}"), n, &edges)
}

/// A ring of `n` qubits.
pub fn ring(n: usize) -> CouplingGraph {
    let mut g = line(n);
    if n > 2 {
        g.add_edge(n - 1, 0);
    }
    g.set_name(format!("ring-{n}"));
    g
}

/// The complete graph (all-to-all coupling) on `n` qubits.
pub fn complete(n: usize) -> CouplingGraph {
    let mut g = CouplingGraph::new(format!("complete-{n}"), n);
    for a in 0..n {
        for b in (a + 1)..n {
            g.add_edge(a, b);
        }
    }
    g
}

/// A star: qubit 0 coupled to every other qubit.
pub fn star(n: usize) -> CouplingGraph {
    let mut g = CouplingGraph::new(format!("star-{n}"), n);
    for q in 1..n {
        g.add_edge(0, q);
    }
    g
}

// ---------------------------------------------------------------------------
// Lattice baselines (Fig. 2a, 2c)
// ---------------------------------------------------------------------------

/// Square lattice of `rows × cols` qubits (Fig. 2a). Qubit `(r, c)` has index
/// `r * cols + c`.
pub fn square_lattice(rows: usize, cols: usize) -> CouplingGraph {
    let mut g = CouplingGraph::new(format!("square-lattice-{rows}x{cols}"), rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let idx = r * cols + c;
            if c + 1 < cols {
                g.add_edge(idx, idx + 1);
            }
            if r + 1 < rows {
                g.add_edge(idx, idx + cols);
            }
        }
    }
    g
}

/// Square lattice with both diagonals added on alternating (checkerboard)
/// tiles (Fig. 2c), IBM's early "Penguin"-style connectivity.
pub fn lattice_alt_diagonals(rows: usize, cols: usize) -> CouplingGraph {
    let mut g = square_lattice(rows, cols);
    g.set_name(format!("lattice-altdiag-{rows}x{cols}"));
    for r in 0..rows.saturating_sub(1) {
        for c in 0..cols.saturating_sub(1) {
            if (r + c) % 2 == 0 {
                let tl = r * cols + c;
                let tr = tl + 1;
                let bl = tl + cols;
                let br = bl + 1;
                g.add_edge(tl, br);
                g.add_edge(tr, bl);
            }
        }
    }
    g
}

// ---------------------------------------------------------------------------
// Hexagonal lattices (Fig. 2b, 2d)
// ---------------------------------------------------------------------------

/// Honeycomb (hex) lattice patch with `rows × cols` hexagons (Fig. 2d).
///
/// Constructed as a brick wall — `rows + 1` horizontal chains joined by
/// vertical rungs at alternating positions — with dangling degree-1 corner
/// vertices trimmed away.
pub fn hex_lattice(rows: usize, cols: usize) -> CouplingGraph {
    let width = 2 * cols + 2;
    let index = |r: usize, x: usize| r * width + x;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for r in 0..=rows {
        for x in 0..width - 1 {
            edges.push((index(r, x), index(r, x + 1)));
        }
    }
    for r in 0..rows {
        // Rungs between chain r and r+1 at every second position, with the
        // parity alternating per row (the brick-wall offset).
        let start = r % 2;
        let mut x = start;
        while x < width {
            edges.push((index(r, x), index(r + 1, x)));
            x += 2;
        }
    }
    let total = (rows + 1) * width;
    let full = CouplingGraph::from_edges("hex-raw", total, &edges);
    let trimmed = trim_pendants(&full);
    relabel_compact(&trimmed, format!("hex-lattice-{rows}x{cols}"))
}

/// Heavy-hex lattice patch with `rows × cols` hexagons (Fig. 2b): the hex
/// lattice with an additional qubit in the middle of every coupling, IBM's
/// current production topology.
pub fn heavy_hex(rows: usize, cols: usize) -> CouplingGraph {
    let hex = hex_lattice(rows, cols);
    let base = hex.num_qubits();
    let edges: Vec<(usize, usize)> = hex.edges().collect();
    let mut g = CouplingGraph::new(format!("heavy-hex-{rows}x{cols}"), base + edges.len());
    for (i, &(a, b)) in edges.iter().enumerate() {
        let mid = base + i;
        g.add_edge(a, mid);
        g.add_edge(mid, b);
    }
    g
}

/// Removes degree-1 vertices repeatedly (keeping at least a cycle), used to
/// clean the brick-wall construction.
fn trim_pendants(g: &CouplingGraph) -> CouplingGraph {
    let n = g.num_qubits();
    let mut removed = vec![false; n];
    loop {
        let mut changed = false;
        for q in 0..n {
            if removed[q] {
                continue;
            }
            let live_degree = g.neighbors(q).filter(|&v| !removed[v]).count();
            if live_degree <= 1 {
                removed[q] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut out = CouplingGraph::new(g.name().to_string(), n);
    for (a, b) in g.edges() {
        if !removed[a] && !removed[b] {
            out.add_edge(a, b);
        }
    }
    // Mark isolated removed vertices by leaving them disconnected; the caller
    // compacts labels afterwards.
    out
}

/// Drops isolated vertices and relabels the rest contiguously.
fn relabel_compact(g: &CouplingGraph, name: impl Into<String>) -> CouplingGraph {
    let mut mapping = BTreeMap::new();
    let mut next = 0usize;
    for q in 0..g.num_qubits() {
        if g.degree(q) > 0 {
            mapping.insert(q, next);
            next += 1;
        }
    }
    let mut out = CouplingGraph::new(name, next);
    for (a, b) in g.edges() {
        out.add_edge(mapping[&a], mapping[&b]);
    }
    out
}

// ---------------------------------------------------------------------------
// Hypercubes (Fig. 3)
// ---------------------------------------------------------------------------

/// The `dim`-dimensional hypercube on `2^dim` qubits.
pub fn hypercube(dim: u32) -> CouplingGraph {
    let n = 1usize << dim;
    let mut g = CouplingGraph::new(format!("hypercube-{dim}d"), n);
    for v in 0..n {
        for b in 0..dim {
            let u = v ^ (1usize << b);
            if u > v {
                g.add_edge(v, u);
            }
        }
    }
    g
}

/// A hypercube-like graph on exactly `n` qubits: the subgraph of the next
/// power-of-two hypercube induced on vertices `0..n` (the paper's §5
/// prescription for the 84-qubit comparison point).
pub fn hypercube_sized(n: usize) -> CouplingGraph {
    let mut dim = 0u32;
    while (1usize << dim) < n {
        dim += 1;
    }
    let full = hypercube(dim);
    let mut g = full.induced_prefix(n, format!("hypercube-{n}"));
    g.set_name(format!("hypercube-{n}"));
    g
}

// ---------------------------------------------------------------------------
// SNAIL modular topologies (§4.3)
// ---------------------------------------------------------------------------

/// The modular 4-ary Tree (Fig. 7a / Fig. 8).
///
/// `levels = 1` gives the 20-qubit two-level tree (4 router qubits + 4 modules
/// of 4); `levels = 2` gives the 84-qubit four-level tree. Each module is a
/// SNAIL coupling its four qubits *and* the parent qubit, i.e. a 5-clique; the
/// four root router qubits form a 4-clique via the router SNAIL.
pub fn tree4(levels: usize) -> CouplingGraph {
    assert!(levels >= 1, "tree needs at least one module level");
    let mut num_qubits = 4usize;
    let mut level_size = 4usize;
    for _ in 0..levels {
        level_size *= 4;
        num_qubits += level_size;
    }
    let mut g = CouplingGraph::new(format!("tree4-{}q", num_qubits), num_qubits);

    // Root router clique.
    for a in 0..4 {
        for b in (a + 1)..4 {
            g.add_edge(a, b);
        }
    }

    // Each parent qubit sprouts a module of four children; the module SNAIL
    // couples {parent, child0..child3} all-to-all.
    let mut frontier: Vec<usize> = (0..4).collect();
    let mut next_id = 4usize;
    for _ in 0..levels {
        let mut new_frontier = Vec::new();
        for &parent in &frontier {
            let children: Vec<usize> = (0..4).map(|i| next_id + i).collect();
            next_id += 4;
            let members: Vec<usize> = std::iter::once(parent)
                .chain(children.iter().copied())
                .collect();
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    g.add_edge(members[i], members[j]);
                }
            }
            new_frontier.extend(children);
        }
        frontier = new_frontier;
    }
    g
}

/// The Round-Robin 4-ary Tree (Fig. 7b).
///
/// Modules keep their internal 4-clique, but instead of every module qubit
/// attaching to a single parent router qubit, qubit `j` of each module
/// attaches to router qubit `j` of the parent module — removing the
/// single-qubit bottleneck of the plain Tree. `levels = 1` gives 20 qubits,
/// `levels = 2` gives 84.
pub fn tree4_rr(levels: usize) -> CouplingGraph {
    assert!(levels >= 1, "tree needs at least one module level");
    let mut num_qubits = 4usize;
    let mut level_size = 4usize;
    for _ in 0..levels {
        level_size *= 4;
        num_qubits += level_size;
    }
    let mut g = CouplingGraph::new(format!("tree4rr-{}q", num_qubits), num_qubits);

    // Root router clique.
    for a in 0..4 {
        for b in (a + 1)..4 {
            g.add_edge(a, b);
        }
    }

    // `groups` holds, per parent module, the list of its four qubits in
    // round-robin slot order. The root module is qubits 0..4.
    let mut parent_groups: Vec<Vec<usize>> = vec![(0..4).collect()];
    let mut next_id = 4usize;
    for _ in 0..levels {
        let mut new_groups = Vec::new();
        for group in &parent_groups {
            // Each parent *group* spawns four child modules (one per parent
            // qubit slot); child module qubits connect round-robin across the
            // parent group's qubits.
            for _ in 0..4 {
                let children: Vec<usize> = (0..4).map(|i| next_id + i).collect();
                next_id += 4;
                // Internal module clique.
                for i in 0..4 {
                    for j in (i + 1)..4 {
                        g.add_edge(children[i], children[j]);
                    }
                }
                // Round-robin uplinks: child j ↔ parent-slot j.
                for j in 0..4 {
                    g.add_edge(children[j], group[j]);
                }
                new_groups.push(children);
            }
        }
        parent_groups = new_groups;
    }
    g
}

/// A SNAIL Corral (Fig. 9).
///
/// `posts` SNAILs are arranged in a ring; each post carries two "fence"
/// qubits. The first fence of post `i` spans posts `(i, i + stride_a)`, the
/// second spans `(i, i + stride_b)` (indices mod `posts`). Two qubits are
/// coupled when they share a post (the post's SNAIL drives the pair).
/// `corral(8, 1, 1)` is the paper's Corral₁,₁ and `corral(8, 1, 2)` its
/// Corral₁,₂, both on 16 qubits.
pub fn corral(posts: usize, stride_a: usize, stride_b: usize) -> CouplingGraph {
    assert!(posts >= 3, "corral needs at least three posts");
    assert!(stride_a >= 1 && stride_b >= 1);
    let num_qubits = 2 * posts;
    let mut g = CouplingGraph::new(
        format!("corral{stride_a},{stride_b}-{num_qubits}q"),
        num_qubits,
    );
    // Qubit 2i   = fence A of post i, spanning posts i and i+stride_a.
    // Qubit 2i+1 = fence B of post i, spanning posts i and i+stride_b.
    let spans = |q: usize| -> (usize, usize) {
        let post = q / 2;
        let stride = if q.is_multiple_of(2) {
            stride_a
        } else {
            stride_b
        };
        (post, (post + stride) % posts)
    };
    // For every post, all attached qubits are pairwise coupled.
    for p in 0..posts {
        let attached: Vec<usize> = (0..num_qubits)
            .filter(|&q| {
                let (a, b) = spans(q);
                a == p || b == p
            })
            .collect();
        for i in 0..attached.len() {
            for j in (i + 1)..attached.len() {
                g.add_edge(attached[i], attached[j]);
            }
        }
    }
    g
}

// ---------------------------------------------------------------------------
// Calibrated-device noise sampling
// ---------------------------------------------------------------------------

/// Assigns every edge of `graph` a sampled "calibrated device" error rate.
///
/// Real devices report heterogeneous per-link calibration data whose error
/// rates span roughly an order of magnitude; this sampler reproduces that
/// regime by drawing each edge's rate log-uniformly from
/// `[base_error / e^spread, base_error · e^spread]` with a deterministic,
/// seeded stream (edges are visited in lexicographic order, so the same seed
/// always yields the same calibration). `spread = 0` leaves the device
/// uniform at `base_error`; `spread ≈ 1.2` covers a 10× range.
///
/// Rates are clamped to `[1e-6, 0.5)` so downstream log-fidelity sums stay
/// finite.
pub fn calibrate_edge_errors(graph: &mut CouplingGraph, base_error: f64, spread: f64, seed: u64) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!(
        base_error > 0.0 && base_error < 1.0,
        "base_error out of range"
    );
    assert!(spread >= 0.0, "spread must be non-negative");
    graph.set_uniform_edge_error(base_error.min(0.5 - f64::EPSILON));
    if spread == 0.0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(usize, usize)> = graph.edges().collect();
    for (a, b) in edges {
        let exponent = rng.gen_range(-spread..spread);
        let rate = (base_error * exponent.exp()).clamp(1e-6, 0.5 - f64::EPSILON);
        graph.set_edge_error(a, b, rate);
    }
}

/// A copy of `graph` with sampled calibration noise (see
/// [`calibrate_edge_errors`]).
pub fn calibrated(graph: &CouplingGraph, base_error: f64, spread: f64, seed: u64) -> CouplingGraph {
    let mut g = graph.clone();
    calibrate_edge_errors(&mut g, base_error, spread, seed);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_lattice_structure() {
        let g = square_lattice(4, 4);
        assert_eq!(g.num_qubits(), 16);
        assert_eq!(g.num_edges(), 24);
        assert_eq!(g.diameter(), 6);
        assert!((g.average_connectivity() - 3.0).abs() < 1e-12);
        assert!((g.average_distance() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn square_lattice_84_matches_table2() {
        // Table 2: 84 qubits, diameter 17, avg distance 6.26, avg conn 3.55.
        let g = square_lattice(7, 12);
        assert_eq!(g.num_qubits(), 84);
        assert_eq!(g.num_edges(), 149);
        assert_eq!(g.diameter(), 17);
        assert!((g.average_distance() - 6.26).abs() < 0.01);
        assert!((g.average_connectivity() - 3.55).abs() < 0.01);
    }

    #[test]
    fn alt_diagonal_lattice_84_matches_table2() {
        // Table 2: diameter 11, avg distance 4.62, avg conn 5.12.
        let g = lattice_alt_diagonals(7, 12);
        assert_eq!(g.num_qubits(), 84);
        assert_eq!(g.diameter(), 11);
        assert!((g.average_connectivity() - 5.12).abs() < 0.02);
        assert!((g.average_distance() - 4.62).abs() < 0.05);
    }

    #[test]
    fn hex_lattice_counts() {
        // R×C honeycomb patch: V = 2(R+1)(C+1) − 2, E = 3RC + 2R + 2C − 1.
        for (r, c) in [(1, 1), (1, 2), (2, 2), (2, 3), (3, 4)] {
            let g = hex_lattice(r, c);
            assert_eq!(g.num_qubits(), 2 * (r + 1) * (c + 1) - 2, "V for {r}x{c}");
            assert_eq!(
                g.num_edges(),
                3 * r * c + 2 * r + 2 * c - 1,
                "E for {r}x{c}"
            );
            assert!(g.is_connected());
        }
    }

    #[test]
    fn hex_lattice_degrees_are_at_most_three() {
        let g = hex_lattice(3, 3);
        for q in 0..g.num_qubits() {
            assert!(g.degree(q) <= 3, "qubit {q} degree {}", g.degree(q));
        }
    }

    #[test]
    fn heavy_hex_structure() {
        let hex = hex_lattice(1, 2);
        let heavy = heavy_hex(1, 2);
        assert_eq!(heavy.num_qubits(), hex.num_qubits() + hex.num_edges());
        assert_eq!(heavy.num_edges(), 2 * hex.num_edges());
        assert!(heavy.is_connected());
        // Heavy-hex degrees are 2 (edge qubits) or 3 (corner qubits).
        for q in 0..heavy.num_qubits() {
            assert!(heavy.degree(q) <= 3);
        }
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.num_qubits(), 16);
        assert_eq!(g.num_edges(), 32);
        assert_eq!(g.diameter(), 4);
        assert!((g.average_connectivity() - 4.0).abs() < 1e-12);
        assert!((g.average_distance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hypercube_sized_84_matches_table2() {
        // Table 2: 84 qubits, avg conn 6.0, diameter 7, avg distance 3.32.
        let g = hypercube_sized(84);
        assert_eq!(g.num_qubits(), 84);
        assert_eq!(g.num_edges(), 252);
        assert!((g.average_connectivity() - 6.0).abs() < 1e-12);
        assert_eq!(g.diameter(), 7);
        assert!((g.average_distance() - 3.32).abs() < 0.05);
        assert!(g.is_connected());
    }

    #[test]
    fn tree20_matches_table1() {
        // Table 1: 20 qubits, diameter 3, avg distance 2.15, avg conn 4.6.
        let g = tree4(1);
        assert_eq!(g.num_qubits(), 20);
        assert_eq!(g.num_edges(), 46);
        assert_eq!(g.diameter(), 3);
        assert!((g.average_distance() - 2.15).abs() < 1e-9);
        assert!((g.average_connectivity() - 4.6).abs() < 1e-9);
    }

    #[test]
    fn tree_rr20_matches_table1() {
        // Table 1: 20 qubits, diameter 3, avg distance 2.03, avg conn 4.6.
        let g = tree4_rr(1);
        assert_eq!(g.num_qubits(), 20);
        assert_eq!(g.num_edges(), 46);
        assert_eq!(g.diameter(), 3);
        assert!((g.average_distance() - 2.03).abs() < 1e-9);
        assert!((g.average_connectivity() - 4.6).abs() < 1e-9);
    }

    #[test]
    fn tree84_structure() {
        // Table 2: 84 qubits, diameter 5, avg distance 3.91 (measured 3.85
        // for this construction; see EXPERIMENTS.md).
        let g = tree4(2);
        assert_eq!(g.num_qubits(), 84);
        assert_eq!(g.diameter(), 5);
        assert!((g.average_distance() - 3.91).abs() < 0.1);
        assert!(g.is_connected());
    }

    #[test]
    fn tree_rr84_structure() {
        // Table 2: 84 qubits, diameter 5, avg distance 3.65; the RR variant
        // must have a strictly smaller average distance than the plain tree.
        let g = tree4_rr(2);
        assert_eq!(g.num_qubits(), 84);
        assert_eq!(g.diameter(), 5);
        assert!(g.is_connected());
        assert!(g.average_distance() < tree4(2).average_distance());
    }

    #[test]
    fn corral_11_matches_table1() {
        // Table 1: 16 qubits, diameter 4, avg distance 2.06, avg conn 5.0.
        let g = corral(8, 1, 1);
        assert_eq!(g.num_qubits(), 16);
        assert_eq!(g.num_edges(), 40);
        assert_eq!(g.diameter(), 4);
        assert!((g.average_connectivity() - 5.0).abs() < 1e-9);
        assert!((g.average_distance() - 2.06).abs() < 0.01);
    }

    #[test]
    fn corral_stride_two_structure() {
        // The literal stride-(1,2) corral: 6-regular but diameter 3.
        let g = corral(8, 1, 2);
        assert_eq!(g.num_qubits(), 16);
        assert_eq!(g.num_edges(), 48);
        assert_eq!(g.diameter(), 3);
        assert!((g.average_connectivity() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn corral_long_stride_matches_table1_corral12_row() {
        // Table 1's Corral1,2 row (16 qubits, diameter 2, avg distance 1.5,
        // avg conn 6.0) is reproduced exactly by the stride-(1,3) corral; see
        // the catalog documentation for the discussion.
        let g = corral(8, 1, 3);
        assert_eq!(g.num_qubits(), 16);
        assert_eq!(g.num_edges(), 48);
        assert_eq!(g.diameter(), 2);
        assert!((g.average_connectivity() - 6.0).abs() < 1e-9);
        assert!((g.average_distance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn all_named_builders_produce_connected_graphs() {
        let graphs = vec![
            square_lattice(4, 4),
            lattice_alt_diagonals(4, 4),
            hex_lattice(2, 3),
            heavy_hex(2, 3),
            hypercube(4),
            hypercube_sized(84),
            tree4(1),
            tree4(2),
            tree4_rr(1),
            tree4_rr(2),
            corral(8, 1, 1),
            corral(8, 1, 2),
            line(10),
            ring(10),
            star(6),
            complete(6),
        ];
        for g in graphs {
            assert!(g.is_connected(), "{} is disconnected", g.name());
        }
    }

    #[test]
    fn corral_degrees_are_uniform() {
        let g = corral(8, 1, 1);
        for q in 0..g.num_qubits() {
            assert_eq!(g.degree(q), 5, "qubit {q}");
        }
        let g = corral(8, 1, 2);
        for q in 0..g.num_qubits() {
            assert_eq!(g.degree(q), 6, "qubit {q}");
        }
    }

    #[test]
    fn calibration_is_seed_deterministic_and_bounded() {
        let base = corral(8, 1, 1);
        let a = calibrated(&base, 1e-3, 1.2, 42);
        let b = calibrated(&base, 1e-3, 1.2, 42);
        let c = calibrated(&base, 1e-3, 1.2, 43);
        let mut differs = false;
        for ((edge, ea), (_, eb)) in a.edge_errors().zip(b.edge_errors()) {
            assert_eq!(ea, eb, "same seed must give same rates on {edge:?}");
            assert!((1e-6..0.5).contains(&ea));
        }
        for ((_, ea), (_, ec)) in a.edge_errors().zip(c.edge_errors()) {
            differs |= ea != ec;
        }
        assert!(
            differs,
            "different seeds should give different calibrations"
        );
        assert!(!a.edge_errors_uniform());
    }

    #[test]
    fn zero_spread_calibration_stays_uniform() {
        let g = calibrated(&line(6), 2e-3, 0.0, 1);
        assert!(g.edge_errors_uniform());
        assert_eq!(g.default_edge_error(), 2e-3);
    }

    #[test]
    fn tree_root_is_a_clique() {
        let g = tree4(1);
        for a in 0..4 {
            for b in (a + 1)..4 {
                assert!(g.has_edge(a, b));
            }
        }
    }
}
