//! Undirected coupling graphs and their structural metrics.
//!
//! A coupling graph records which physical qubit pairs can host a native
//! two-qubit gate, and carries a per-edge gate error rate (uniform by
//! default; settable per edge for calibrated-device studies). The paper
//! characterizes every topology by the metrics of Tables 1 and 2 — qubit
//! count, diameter, average pairwise distance and average connectivity
//! (degree) — all of which are provided here, along with the shortest-path
//! machinery (hop-count BFS and error-weighted Dijkstra) the router needs.
//!
//! Internally the graph is stored in CSR (compressed sparse row) form: one
//! flat `offsets` array and one flat sorted neighbor slice, so the router's
//! hot loops (`neighbors`, `has_edge`, BFS/Dijkstra relaxation) are
//! cache-friendly array scans instead of tree walks. Every edge additionally
//! carries a stable **edge index** — its rank in the lexicographic `(min,
//! max)` edge order — which lets per-edge data (error rates, router
//! penalties, candidate bitmaps) live in plain `Vec`s indexed by
//! [`CouplingGraph::edge_index`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// The uniform per-edge two-qubit error rate every graph starts with. It
/// matches the paper's running example of a 99.9%-fidelity basis pulse (the
/// `ErrorModel` default in `snailqc-core`), so edge-aware and uniform
/// fidelity estimates agree on an uncalibrated device.
pub const DEFAULT_EDGE_ERROR: f64 = 1e-3;

/// An undirected graph over qubits `0..num_qubits`, stored as a CSR
/// adjacency plus a lexicographically ordered edge list.
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingGraph {
    name: String,
    /// CSR row offsets: the neighbors of `q` are
    /// `csr_neighbors[offsets[q]..offsets[q + 1]]`, ascending.
    offsets: Vec<usize>,
    /// Flat neighbor array (each undirected edge appears twice).
    csr_neighbors: Vec<usize>,
    /// Edge index of `(q, neighbor)`, parallel to `csr_neighbors`.
    csr_edge_ids: Vec<usize>,
    /// Edges as `(min, max)` pairs in lexicographic order; the position of
    /// an edge in this list is its stable edge index.
    edge_list: Vec<(usize, usize)>,
    /// Error rate applied to every edge without an explicit override.
    default_edge_error: f64,
    /// Resolved per-edge error rates, indexed by edge index.
    edge_rates: Vec<f64>,
    /// True where [`CouplingGraph::set_edge_error`] recorded an explicit
    /// override (distinguishes a calibrated edge from the uniform default).
    edge_overridden: Vec<bool>,
}

/// The structural summary reported in the paper's Tables 1 and 2.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct TopologyMetrics {
    /// Number of qubits.
    pub qubits: usize,
    /// Graph diameter (longest shortest path).
    pub diameter: usize,
    /// Average pairwise distance, averaged over *all ordered pairs including
    /// self-pairs* (the convention that reproduces the paper's Table 1).
    pub avg_distance: f64,
    /// Average vertex degree ("average connectivity").
    pub avg_connectivity: f64,
}

impl CouplingGraph {
    /// Creates an edgeless graph on `num_qubits` qubits.
    pub fn new(name: impl Into<String>, num_qubits: usize) -> Self {
        Self {
            name: name.into(),
            offsets: vec![0; num_qubits + 1],
            csr_neighbors: Vec::new(),
            csr_edge_ids: Vec::new(),
            edge_list: Vec::new(),
            default_edge_error: DEFAULT_EDGE_ERROR,
            edge_rates: Vec::new(),
            edge_overridden: Vec::new(),
        }
    }

    /// Builds a graph from an explicit edge list.
    pub fn from_edges(
        name: impl Into<String>,
        num_qubits: usize,
        edges: &[(usize, usize)],
    ) -> Self {
        let mut g = Self::new(name, num_qubits);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Human-readable topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the graph (used by truncation and catalog helpers).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The sorted neighbor slice of `q`.
    #[inline]
    fn neighbor_slice(&self, q: usize) -> &[usize] {
        &self.csr_neighbors[self.offsets[q]..self.offsets[q + 1]]
    }

    /// Adds an undirected edge; self-loops and duplicates are ignored.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(
            a < self.num_qubits() && b < self.num_qubits(),
            "edge ({a},{b}) out of range"
        );
        if a == b || self.has_edge(a, b) {
            return;
        }
        let edge = (a.min(b), a.max(b));
        // Lexicographic rank of the new edge = its stable index; every
        // existing id at or above it shifts up by one.
        let id = self.edge_list.binary_search(&edge).unwrap_err();
        for slot in &mut self.csr_edge_ids {
            if *slot >= id {
                *slot += 1;
            }
        }
        self.edge_list.insert(id, edge);
        self.edge_rates.insert(id, self.default_edge_error);
        self.edge_overridden.insert(id, false);
        // Insert each endpoint into the other's sorted CSR row. The second
        // insertion recomputes its position from the already-shifted offsets.
        for (u, v) in [(a, b), (b, a)] {
            let row = self.neighbor_slice(u);
            let pos = self.offsets[u] + row.binary_search(&v).unwrap_err();
            self.csr_neighbors.insert(pos, v);
            self.csr_edge_ids.insert(pos, id);
            for offset in &mut self.offsets[u + 1..] {
                *offset += 1;
            }
        }
    }

    /// True when `(a, b)` is an edge.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        a < self.num_qubits() && self.neighbor_slice(a).binary_search(&b).is_ok()
    }

    /// Neighbors of `q` in ascending order.
    pub fn neighbors(&self, q: usize) -> impl Iterator<Item = usize> + '_ {
        self.neighbor_slice(q).iter().copied()
    }

    /// Neighbors of `q` in ascending order, each paired with the index of
    /// the connecting edge — the hot-path iterator that lets callers keep
    /// per-edge data in edge-indexed `Vec`s.
    pub fn neighbors_with_edge_ids(&self, q: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let range = self.offsets[q]..self.offsets[q + 1];
        self.csr_neighbors[range.clone()]
            .iter()
            .copied()
            .zip(self.csr_edge_ids[range].iter().copied())
    }

    /// Degree of `q`.
    pub fn degree(&self, q: usize) -> usize {
        self.offsets[q + 1] - self.offsets[q]
    }

    /// All edges as `(min, max)` pairs in lexicographic order — i.e. in
    /// edge-index order. Iterates the stored edge list without allocating,
    /// so it is safe to call inside hot loops (layout seeding, router cost
    /// models).
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edge_list.iter().copied()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edge_list.len()
    }

    // -----------------------------------------------------------------------
    // Edge index
    // -----------------------------------------------------------------------

    /// The stable index of edge `(a, b)` (order-insensitive): its rank in
    /// the lexicographic `(min, max)` edge order, i.e. its position in
    /// [`CouplingGraph::edges`]. `None` when `(a, b)` is not an edge.
    pub fn edge_index(&self, a: usize, b: usize) -> Option<usize> {
        if a >= self.num_qubits() {
            return None;
        }
        let pos = self.neighbor_slice(a).binary_search(&b).ok()?;
        Some(self.csr_edge_ids[self.offsets[a] + pos])
    }

    /// The `(min, max)` endpoints of the edge with index `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= num_edges()`.
    pub fn edge_endpoints(&self, idx: usize) -> (usize, usize) {
        self.edge_list[idx]
    }

    // -----------------------------------------------------------------------
    // Per-edge error rates
    // -----------------------------------------------------------------------

    /// The error rate of edge `(a, b)` (order-insensitive): the per-edge
    /// override when one was set, the uniform default otherwise.
    ///
    /// # Panics
    /// Panics if `(a, b)` is not an edge.
    pub fn edge_error(&self, a: usize, b: usize) -> f64 {
        let idx = self
            .edge_index(a, b)
            .unwrap_or_else(|| panic!("({a},{b}) is not an edge"));
        self.edge_rates[idx]
    }

    /// The error rate of the edge with index `idx` — the allocation-free
    /// edge-indexed read the router's cost models use.
    ///
    /// # Panics
    /// Panics if `idx >= num_edges()`.
    pub fn edge_error_at(&self, idx: usize) -> f64 {
        self.edge_rates[idx]
    }

    /// Sets the error rate of edge `(a, b)`.
    ///
    /// # Panics
    /// Panics if `(a, b)` is not an edge or `rate` is outside `[0, 1)`.
    pub fn set_edge_error(&mut self, a: usize, b: usize, rate: f64) {
        let idx = self
            .edge_index(a, b)
            .unwrap_or_else(|| panic!("({a},{b}) is not an edge"));
        assert!((0.0..1.0).contains(&rate), "edge error {rate} not in [0,1)");
        self.edge_rates[idx] = rate;
        self.edge_overridden[idx] = true;
    }

    /// Multiplies the error rate of edge `(a, b)` by `factor` (clamped below
    /// 1), modelling a degraded link on an otherwise calibrated device.
    pub fn scale_edge_error(&mut self, a: usize, b: usize, factor: f64) {
        let scaled = (self.edge_error(a, b) * factor).clamp(0.0, 0.999_999);
        self.set_edge_error(a, b, scaled);
    }

    /// Resets every edge to the uniform error `rate`, discarding overrides.
    ///
    /// # Panics
    /// Panics if `rate` is outside `[0, 1)`.
    pub fn set_uniform_edge_error(&mut self, rate: f64) {
        assert!((0.0..1.0).contains(&rate), "edge error {rate} not in [0,1)");
        self.default_edge_error = rate;
        self.edge_rates.iter_mut().for_each(|r| *r = rate);
        self.edge_overridden.iter_mut().for_each(|o| *o = false);
    }

    /// The uniform error rate edges fall back to without an override.
    pub fn default_edge_error(&self) -> f64 {
        self.default_edge_error
    }

    /// True when every edge carries the same error rate — whether from the
    /// default or from overrides that happen to agree — i.e. noise-aware
    /// routing degenerates to the noise-blind heuristic.
    pub fn edge_errors_uniform(&self) -> bool {
        // Overrides only make the device heterogeneous if one differs from
        // another, or from the default while some edge still uses the default.
        let mut overrides = self
            .edge_rates
            .iter()
            .zip(&self.edge_overridden)
            .filter(|(_, &o)| o)
            .map(|(&r, _)| r);
        let Some(first) = overrides.next() else {
            return true;
        };
        if !overrides.all(|r| r == first) {
            return false;
        }
        first == self.default_edge_error
            || self.edge_overridden.iter().filter(|&&o| o).count() == self.num_edges()
    }

    /// Every edge with its error rate, in lexicographic edge order.
    pub fn edge_errors(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.edge_list
            .iter()
            .copied()
            .zip(self.edge_rates.iter().copied())
    }

    /// Breadth-first distances from `source`; unreachable nodes get
    /// `usize::MAX`.
    pub fn bfs_distances(&self, source: usize) -> Vec<usize> {
        let n = self.num_qubits();
        let mut dist = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        dist[source] = 0;
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// All-pairs shortest-path distance matrix (BFS from every node).
    pub fn distance_matrix(&self) -> Vec<Vec<usize>> {
        (0..self.num_qubits())
            .map(|s| self.bfs_distances(s))
            .collect()
    }

    /// Breadth-first hop counts from `source` written into `row` (`u16`
    /// storage, `u16::MAX` = unreachable). `row` must have length
    /// `num_qubits()` and is fully overwritten — the allocation-free kernel
    /// behind [`crate::distance::HopMatrix`].
    ///
    /// # Panics
    /// Panics if `row.len() != num_qubits()` or if the graph has `u16::MAX`
    /// or more qubits (hop counts would not fit the sentinel encoding).
    pub fn bfs_hops_into(&self, source: usize, row: &mut [u16]) {
        let n = self.num_qubits();
        assert_eq!(row.len(), n, "hop row length mismatch");
        assert!(n < u16::MAX as usize, "graph too large for u16 hop counts");
        row.fill(u16::MAX);
        let mut queue = VecDeque::new();
        row[source] = 0;
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if row[v] == u16::MAX {
                    row[v] = row[u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }

    /// Breadth-first hop counts from `source` as a fresh `u16` row
    /// (`u16::MAX` = unreachable); the compact counterpart of
    /// [`CouplingGraph::bfs_distances`].
    pub fn bfs_hops(&self, source: usize) -> Vec<u16> {
        let mut row = vec![u16::MAX; self.num_qubits()];
        self.bfs_hops_into(source, &mut row);
        row
    }

    /// The connected components of the graph, each listed in ascending qubit
    /// order, ordered by **descending size** with the smallest member index
    /// breaking ties — so `components[0]` is always the (deterministic)
    /// largest component. A connected graph yields one component.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let n = self.num_qubits();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut members = vec![start];
            seen[start] = true;
            let mut queue = VecDeque::new();
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for v in self.neighbors(u) {
                    if !seen[v] {
                        seen[v] = true;
                        members.push(v);
                        queue.push_back(v);
                    }
                }
            }
            members.sort_unstable();
            components.push(members);
        }
        components.sort_by_key(|m| (Reverse(m.len()), m[0]));
        components
    }

    /// Single-source shortest-path distances under a per-edge cost function
    /// (Dijkstra with a binary heap, O(E log V); costs must be
    /// non-negative). Unreachable nodes get `f64::INFINITY`.
    ///
    /// The computed distances are bitwise-identical to a selection-loop
    /// Dijkstra: each distance is the minimum over paths of a left-to-right
    /// cost sum, and both algorithms evaluate exactly those sums.
    pub fn weighted_distances(
        &self,
        source: usize,
        cost: impl Fn(usize, usize) -> f64,
    ) -> Vec<f64> {
        let n = self.num_qubits();
        let mut dist = vec![f64::INFINITY; n];
        let mut done = vec![false; n];
        // Reverse (max-heap → min-heap) over (cost bits, node): non-negative
        // f64 bit patterns order like the floats, and the node index breaks
        // exact ties deterministically.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        dist[source] = 0.0;
        heap.push(Reverse((0.0f64.to_bits(), source)));
        while let Some(Reverse((_, u))) = heap.pop() {
            if done[u] {
                continue; // stale entry, already settled at a lower cost
            }
            done[u] = true;
            for v in self.neighbors(u) {
                let next = dist[u] + cost(u, v);
                if next < dist[v] {
                    dist[v] = next;
                    heap.push(Reverse((next.to_bits(), v)));
                }
            }
        }
        dist
    }

    /// All-pairs shortest-path matrix under a per-edge cost function.
    pub fn weighted_distance_matrix(&self, cost: impl Fn(usize, usize) -> f64) -> Vec<Vec<f64>> {
        (0..self.num_qubits())
            .map(|s| self.weighted_distances(s, &cost))
            .collect()
    }

    /// A shortest path from `a` to `b` (inclusive of both endpoints), or
    /// `None` when disconnected.
    pub fn shortest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        if a == b {
            return Some(vec![a]);
        }
        let n = self.num_qubits();
        let mut prev = vec![usize::MAX; n];
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        visited[a] = true;
        queue.push_back(a);
        while let Some(u) = queue.pop_front() {
            if u == b {
                break;
            }
            for v in self.neighbors(u) {
                if !visited[v] {
                    visited[v] = true;
                    prev[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if !visited[b] {
            return None;
        }
        let mut path = vec![b];
        let mut cur = b;
        while cur != a {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// True when every qubit can reach every other qubit.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits() == 0 {
            return true;
        }
        self.bfs_distances(0).iter().all(|&d| d != usize::MAX)
    }

    /// Graph diameter. Panics if the graph is disconnected or empty.
    pub fn diameter(&self) -> usize {
        let dm = self.distance_matrix();
        dm.iter()
            .flat_map(|row| row.iter())
            .copied()
            .max()
            .expect("diameter of empty graph")
    }

    /// Average pairwise distance over all ordered pairs including self-pairs
    /// (i.e. `Σ d(i,j) / n²`), matching the paper's Table 1/2 convention.
    pub fn average_distance(&self) -> f64 {
        let n = self.num_qubits();
        if n == 0 {
            return 0.0;
        }
        let dm = self.distance_matrix();
        let total: usize = dm.iter().flat_map(|row| row.iter()).sum();
        total as f64 / (n * n) as f64
    }

    /// Average vertex degree.
    pub fn average_connectivity(&self) -> f64 {
        if self.num_qubits() == 0 {
            return 0.0;
        }
        2.0 * self.num_edges() as f64 / self.num_qubits() as f64
    }

    /// The paper-style structural summary.
    pub fn metrics(&self) -> TopologyMetrics {
        TopologyMetrics {
            qubits: self.num_qubits(),
            diameter: self.diameter(),
            avg_distance: self.average_distance(),
            avg_connectivity: self.average_connectivity(),
        }
    }

    /// Returns the subgraph induced on the first `n` qubits, relabelled
    /// `0..n`. Edge error rates carry over. Panics if `n` exceeds the current
    /// size.
    pub fn induced_prefix(&self, n: usize, name: impl Into<String>) -> CouplingGraph {
        assert!(n <= self.num_qubits());
        let mut g = CouplingGraph::new(name, n);
        g.default_edge_error = self.default_edge_error;
        for (a, b) in self.edges() {
            if a < n && b < n {
                g.add_edge(a, b);
            }
        }
        for (idx, &(a, b)) in self.edge_list.iter().enumerate() {
            if self.edge_overridden[idx] && a < n && b < n {
                g.set_edge_error(a, b, self.edge_rates[idx]);
            }
        }
        g
    }

    /// Removes up to `count` degree-≤2 boundary nodes (highest index first)
    /// while keeping the graph connected, then relabels qubits contiguously.
    /// Used to trim lattice fragments to an exact qubit budget.
    pub fn truncate_boundary(
        &self,
        target_qubits: usize,
        name: impl Into<String>,
    ) -> CouplingGraph {
        assert!(target_qubits <= self.num_qubits());
        let mut removed = vec![false; self.num_qubits()];
        let mut remaining = self.num_qubits();
        while remaining > target_qubits {
            // Pick the highest-index, lowest-degree node whose removal keeps
            // the graph connected.
            let mut candidates: Vec<usize> =
                (0..self.num_qubits()).filter(|&q| !removed[q]).collect();
            candidates.sort_by_key(|&q| {
                let live_degree = self.neighbors(q).filter(|&n| !removed[n]).count();
                (live_degree, usize::MAX - q)
            });
            let mut removed_one = false;
            for &q in &candidates {
                removed[q] = true;
                if self.connected_excluding(&removed) {
                    removed_one = true;
                    break;
                }
                removed[q] = false;
            }
            assert!(
                removed_one,
                "could not truncate while preserving connectivity"
            );
            remaining -= 1;
        }
        // Relabel.
        let mut mapping = vec![usize::MAX; self.num_qubits()];
        let mut next = 0;
        for q in 0..self.num_qubits() {
            if !removed[q] {
                mapping[q] = next;
                next += 1;
            }
        }
        let mut g = CouplingGraph::new(name, target_qubits);
        g.default_edge_error = self.default_edge_error;
        for (a, b) in self.edges() {
            if !removed[a] && !removed[b] {
                g.add_edge(mapping[a], mapping[b]);
            }
        }
        for (idx, &(a, b)) in self.edge_list.iter().enumerate() {
            if self.edge_overridden[idx] && !removed[a] && !removed[b] {
                g.set_edge_error(mapping[a], mapping[b], self.edge_rates[idx]);
            }
        }
        g
    }

    fn connected_excluding(&self, removed: &[bool]) -> bool {
        let n = self.num_qubits();
        let live: Vec<usize> = (0..n).filter(|&q| !removed[q]).collect();
        if live.is_empty() {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[live[0]] = true;
        queue.push_back(live[0]);
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if !removed[v] && !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> CouplingGraph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        CouplingGraph::from_edges("path", n, &edges)
    }

    fn cycle(n: usize) -> CouplingGraph {
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        CouplingGraph::from_edges("cycle", n, &edges)
    }

    fn complete(n: usize) -> CouplingGraph {
        let mut g = CouplingGraph::new("complete", n);
        for a in 0..n {
            for b in (a + 1)..n {
                g.add_edge(a, b);
            }
        }
        g
    }

    #[test]
    fn edges_are_undirected_and_deduplicated() {
        let mut g = CouplingGraph::new("g", 3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn path_metrics() {
        let g = path(5);
        assert_eq!(g.diameter(), 4);
        assert!(g.is_connected());
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        // Sum of all ordered distances on P5 = 2 * 40 = 80? compute: pairwise
        // sum (unordered) = Σ_{d} d*(5-d) = 1*4+2*3+3*2+4*1 = 20 → ordered 40.
        assert!((g.average_distance() - 40.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_metrics() {
        let g = cycle(6);
        assert_eq!(g.diameter(), 3);
        assert!((g.average_connectivity() - 2.0).abs() < 1e-12);
        // Distances from any node: 0,1,1,2,2,3 → sum 9; total 54; /36 = 1.5.
        assert!((g.average_distance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_metrics() {
        let g = complete(5);
        assert_eq!(g.diameter(), 1);
        assert!((g.average_connectivity() - 4.0).abs() < 1e-12);
        assert!((g.average_distance() - 20.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = cycle(8);
        let p = g.shortest_path(0, 4).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p[0], 0);
        assert_eq!(*p.last().unwrap(), 4);
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn shortest_path_to_self() {
        let g = path(3);
        assert_eq!(g.shortest_path(1, 1).unwrap(), vec![1]);
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = CouplingGraph::from_edges("two islands", 4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        assert!(g.shortest_path(0, 3).is_none());
    }

    #[test]
    fn induced_prefix_keeps_inner_edges() {
        let g = complete(5);
        let sub = g.induced_prefix(3, "k3");
        assert_eq!(sub.num_qubits(), 3);
        assert_eq!(sub.num_edges(), 3);
    }

    #[test]
    fn truncate_boundary_preserves_connectivity() {
        let g = path(10);
        let t = g.truncate_boundary(7, "path7");
        assert_eq!(t.num_qubits(), 7);
        assert!(t.is_connected());
    }

    #[test]
    fn edges_iterate_in_lexicographic_order_without_allocation() {
        let g = cycle(5);
        let edges: Vec<(usize, usize)> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 4), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(g.edges().count(), g.num_edges());
    }

    #[test]
    fn edge_index_is_the_lexicographic_rank() {
        let g = cycle(5);
        for (rank, (a, b)) in g.edges().enumerate() {
            assert_eq!(g.edge_index(a, b), Some(rank));
            assert_eq!(g.edge_index(b, a), Some(rank), "order-insensitive");
            assert_eq!(g.edge_endpoints(rank), (a, b));
        }
        assert_eq!(g.edge_index(0, 2), None);
        assert_eq!(g.edge_index(99, 0), None);
    }

    #[test]
    fn edge_indices_stay_lexicographic_under_out_of_order_insertion() {
        // Insert edges in reverse order; the index must still be the rank in
        // the (min, max) lexicographic order, not insertion order.
        let g = CouplingGraph::from_edges("rev", 4, &[(2, 3), (1, 2), (0, 3), (0, 1)]);
        let edges: Vec<(usize, usize)> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
        for (rank, &(a, b)) in edges.iter().enumerate() {
            assert_eq!(g.edge_index(a, b), Some(rank));
        }
    }

    #[test]
    fn neighbors_with_edge_ids_agree_with_edge_index() {
        let g = complete(5);
        for q in 0..5 {
            let pairs: Vec<(usize, usize)> = g.neighbors_with_edge_ids(q).collect();
            let plain: Vec<usize> = g.neighbors(q).collect();
            assert_eq!(
                pairs.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
                plain,
                "same neighbor order"
            );
            for (v, id) in pairs {
                assert_eq!(g.edge_index(q, v), Some(id));
                assert_eq!(g.edge_error_at(id), g.edge_error(q, v));
            }
        }
    }

    #[test]
    fn edge_errors_default_to_uniform() {
        let g = path(4);
        assert!(g.edge_errors_uniform());
        for ((a, b), err) in g.edge_errors() {
            assert!(g.has_edge(a, b));
            assert_eq!(err, DEFAULT_EDGE_ERROR);
        }
    }

    #[test]
    fn edge_error_overrides_are_order_insensitive() {
        let mut g = path(4);
        g.set_edge_error(2, 1, 0.05);
        assert_eq!(g.edge_error(1, 2), 0.05);
        assert_eq!(g.edge_error(2, 1), 0.05);
        assert_eq!(g.edge_error(0, 1), DEFAULT_EDGE_ERROR);
        assert!(!g.edge_errors_uniform());
        g.set_uniform_edge_error(0.002);
        assert!(g.edge_errors_uniform());
        assert_eq!(g.edge_error(1, 2), 0.002);
    }

    #[test]
    fn overriding_every_edge_to_one_rate_counts_as_uniform() {
        let mut g = path(4);
        for (a, b) in g.edges().collect::<Vec<_>>() {
            g.set_edge_error(a, b, 0.005);
        }
        assert!(g.edge_errors_uniform(), "all edges agree at 0.005");
        g.set_edge_error(1, 2, 0.009);
        assert!(!g.edge_errors_uniform());
    }

    #[test]
    fn partial_overrides_at_a_non_default_rate_are_heterogeneous() {
        let mut g = path(4);
        g.set_edge_error(0, 1, 0.005); // other edges still at the default
        assert!(!g.edge_errors_uniform());
    }

    #[test]
    fn scale_edge_error_multiplies_and_clamps() {
        let mut g = path(3);
        g.scale_edge_error(0, 1, 10.0);
        assert!((g.edge_error(0, 1) - 10.0 * DEFAULT_EDGE_ERROR).abs() < 1e-15);
        g.scale_edge_error(0, 1, 1e9);
        assert!(g.edge_error(0, 1) < 1.0);
    }

    #[test]
    fn overrides_keep_their_edges_when_later_insertions_shift_indices() {
        // Setting an override and then adding a lexicographically smaller
        // edge shifts the override's edge index; the rate must follow.
        let mut g = CouplingGraph::new("shift", 4);
        g.add_edge(2, 3);
        g.set_edge_error(2, 3, 0.07);
        g.add_edge(0, 1); // takes index 0, shifting (2,3) to index 1
        assert_eq!(g.edge_error(2, 3), 0.07);
        assert_eq!(g.edge_error(0, 1), DEFAULT_EDGE_ERROR);
        assert_eq!(g.edge_index(0, 1), Some(0));
        assert_eq!(g.edge_index(2, 3), Some(1));
    }

    #[test]
    #[should_panic(expected = "is not an edge")]
    fn setting_error_on_a_non_edge_panics() {
        let mut g = path(4);
        g.set_edge_error(0, 3, 0.1);
    }

    #[test]
    fn weighted_distances_match_bfs_under_unit_costs() {
        let g = cycle(8);
        for s in 0..8 {
            let bfs = g.bfs_distances(s);
            let dij = g.weighted_distances(s, |_, _| 1.0);
            for (h, w) in bfs.iter().zip(&dij) {
                assert!((*h as f64 - w).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weighted_distances_route_around_expensive_edges() {
        // Square 0-1-2-3-0: make edge (0,1) cost 10; the cheapest 0→1 path is
        // now 0-3-2-1 at cost 3.
        let g = CouplingGraph::from_edges("sq", 4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let cost = |a: usize, b: usize| {
            if (a.min(b), a.max(b)) == (0, 1) {
                10.0
            } else {
                1.0
            }
        };
        let d = g.weighted_distances(0, cost);
        assert!((d[1] - 3.0).abs() < 1e-12);
        let dm = g.weighted_distance_matrix(cost);
        assert!((dm[1][0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_distances_mark_unreachable_nodes_infinite() {
        let g = CouplingGraph::from_edges("two islands", 4, &[(0, 1), (2, 3)]);
        let d = g.weighted_distances(0, |_, _| 1.0);
        assert!(d[2].is_infinite() && d[3].is_infinite());
        assert!((d[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncation_and_induction_carry_edge_errors() {
        let mut g = path(10);
        g.set_edge_error(0, 1, 0.04);
        g.set_edge_error(8, 9, 0.09);
        let t = g.truncate_boundary(7, "path7");
        assert_eq!(t.edge_error(0, 1), 0.04); // low end survives truncation
        let sub = g.induced_prefix(5, "path5");
        assert_eq!(sub.edge_error(0, 1), 0.04);
        assert_eq!(sub.edge_error(3, 4), DEFAULT_EDGE_ERROR);
    }

    #[test]
    fn bfs_hops_match_bfs_distances() {
        let g = CouplingGraph::from_edges("mixed", 6, &[(0, 1), (1, 2), (2, 0), (4, 5)]);
        for s in 0..6 {
            let legacy = g.bfs_distances(s);
            let hops = g.bfs_hops(s);
            for (h, d) in hops.iter().zip(&legacy) {
                if *d == usize::MAX {
                    assert_eq!(*h, u16::MAX);
                } else {
                    assert_eq!(*h as usize, *d);
                }
            }
        }
    }

    #[test]
    fn connected_components_order_and_membership() {
        // Components: {1,2,6} (3 nodes), {0,4} and {3,5} (2 nodes each), {7}.
        let g = CouplingGraph::from_edges("frag", 8, &[(1, 2), (2, 6), (0, 4), (3, 5)]);
        let comps = g.connected_components();
        assert_eq!(
            comps,
            vec![vec![1, 2, 6], vec![0, 4], vec![3, 5], vec![7]],
            "descending size, ties by smallest member"
        );
        let g2 = cycle(5);
        assert_eq!(g2.connected_components(), vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn metrics_struct_matches_individual_queries() {
        let g = cycle(6);
        let m = g.metrics();
        assert_eq!(m.qubits, 6);
        assert_eq!(m.diameter, 3);
        assert!((m.avg_distance - 1.5).abs() < 1e-12);
        assert!((m.avg_connectivity - 2.0).abs() < 1e-12);
    }
}
