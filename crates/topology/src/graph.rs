//! Undirected coupling graphs and their structural metrics.
//!
//! A coupling graph records which physical qubit pairs can host a native
//! two-qubit gate, and carries a per-edge gate error rate (uniform by
//! default; settable per edge for calibrated-device studies). The paper
//! characterizes every topology by the metrics of Tables 1 and 2 — qubit
//! count, diameter, average pairwise distance and average connectivity
//! (degree) — all of which are provided here, along with the shortest-path
//! machinery (hop-count BFS and error-weighted Dijkstra) the router needs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The uniform per-edge two-qubit error rate every graph starts with. It
/// matches the paper's running example of a 99.9%-fidelity basis pulse (the
/// `ErrorModel` default in `snailqc-core`), so edge-aware and uniform
/// fidelity estimates agree on an uncalibrated device.
pub const DEFAULT_EDGE_ERROR: f64 = 1e-3;

/// An undirected graph over qubits `0..num_qubits`.
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingGraph {
    name: String,
    adjacency: Vec<BTreeSet<usize>>,
    /// Error rate applied to every edge without an explicit override.
    default_edge_error: f64,
    /// Per-edge overrides, keyed by `(min, max)` qubit pairs.
    edge_error_overrides: BTreeMap<(usize, usize), f64>,
}

/// The structural summary reported in the paper's Tables 1 and 2.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct TopologyMetrics {
    /// Number of qubits.
    pub qubits: usize,
    /// Graph diameter (longest shortest path).
    pub diameter: usize,
    /// Average pairwise distance, averaged over *all ordered pairs including
    /// self-pairs* (the convention that reproduces the paper's Table 1).
    pub avg_distance: f64,
    /// Average vertex degree ("average connectivity").
    pub avg_connectivity: f64,
}

impl CouplingGraph {
    /// Creates an edgeless graph on `num_qubits` qubits.
    pub fn new(name: impl Into<String>, num_qubits: usize) -> Self {
        Self {
            name: name.into(),
            adjacency: vec![BTreeSet::new(); num_qubits],
            default_edge_error: DEFAULT_EDGE_ERROR,
            edge_error_overrides: BTreeMap::new(),
        }
    }

    /// Builds a graph from an explicit edge list.
    pub fn from_edges(
        name: impl Into<String>,
        num_qubits: usize,
        edges: &[(usize, usize)],
    ) -> Self {
        let mut g = Self::new(name, num_qubits);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Human-readable topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the graph (used by truncation and catalog helpers).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.adjacency.len()
    }

    /// Adds an undirected edge; self-loops and duplicates are ignored.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(
            a < self.num_qubits() && b < self.num_qubits(),
            "edge ({a},{b}) out of range"
        );
        if a == b {
            return;
        }
        self.adjacency[a].insert(b);
        self.adjacency[b].insert(a);
    }

    /// True when `(a, b)` is an edge.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adjacency.get(a).is_some_and(|s| s.contains(&b))
    }

    /// Neighbors of `q` in ascending order.
    pub fn neighbors(&self, q: usize) -> impl Iterator<Item = usize> + '_ {
        self.adjacency[q].iter().copied()
    }

    /// Degree of `q`.
    pub fn degree(&self, q: usize) -> usize {
        self.adjacency[q].len()
    }

    /// All edges as `(min, max)` pairs in lexicographic order. Iterates over
    /// the stored adjacency sets without allocating, so it is safe to call
    /// inside hot loops (layout seeding, router cost models).
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(a, nbrs)| nbrs.range(a + 1..).map(move |&b| (a, b)))
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(|s| s.len()).sum::<usize>() / 2
    }

    // -----------------------------------------------------------------------
    // Per-edge error rates
    // -----------------------------------------------------------------------

    /// The error rate of edge `(a, b)` (order-insensitive): the per-edge
    /// override when one was set, the uniform default otherwise.
    ///
    /// # Panics
    /// Panics if `(a, b)` is not an edge.
    pub fn edge_error(&self, a: usize, b: usize) -> f64 {
        assert!(self.has_edge(a, b), "({a},{b}) is not an edge");
        self.edge_error_overrides
            .get(&(a.min(b), a.max(b)))
            .copied()
            .unwrap_or(self.default_edge_error)
    }

    /// Sets the error rate of edge `(a, b)`.
    ///
    /// # Panics
    /// Panics if `(a, b)` is not an edge or `rate` is outside `[0, 1)`.
    pub fn set_edge_error(&mut self, a: usize, b: usize, rate: f64) {
        assert!(self.has_edge(a, b), "({a},{b}) is not an edge");
        assert!((0.0..1.0).contains(&rate), "edge error {rate} not in [0,1)");
        self.edge_error_overrides.insert((a.min(b), a.max(b)), rate);
    }

    /// Multiplies the error rate of edge `(a, b)` by `factor` (clamped below
    /// 1), modelling a degraded link on an otherwise calibrated device.
    pub fn scale_edge_error(&mut self, a: usize, b: usize, factor: f64) {
        let scaled = (self.edge_error(a, b) * factor).clamp(0.0, 0.999_999);
        self.set_edge_error(a, b, scaled);
    }

    /// Resets every edge to the uniform error `rate`, discarding overrides.
    ///
    /// # Panics
    /// Panics if `rate` is outside `[0, 1)`.
    pub fn set_uniform_edge_error(&mut self, rate: f64) {
        assert!((0.0..1.0).contains(&rate), "edge error {rate} not in [0,1)");
        self.default_edge_error = rate;
        self.edge_error_overrides.clear();
    }

    /// The uniform error rate edges fall back to without an override.
    pub fn default_edge_error(&self) -> f64 {
        self.default_edge_error
    }

    /// True when every edge carries the same error rate — whether from the
    /// default or from overrides that happen to agree — i.e. noise-aware
    /// routing degenerates to the noise-blind heuristic.
    pub fn edge_errors_uniform(&self) -> bool {
        // Overrides only make the device heterogeneous if one differs from
        // another, or from the default while some edge still uses the default.
        let mut overrides = self.edge_error_overrides.values();
        let Some(&first) = overrides.next() else {
            return true;
        };
        if !overrides.all(|&r| r == first) {
            return false;
        }
        first == self.default_edge_error || self.edge_error_overrides.len() == self.num_edges()
    }

    /// Every edge with its error rate, in lexicographic edge order.
    pub fn edge_errors(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.edges().map(|(a, b)| ((a, b), self.edge_error(a, b)))
    }

    /// Breadth-first distances from `source`; unreachable nodes get
    /// `usize::MAX`.
    pub fn bfs_distances(&self, source: usize) -> Vec<usize> {
        let n = self.num_qubits();
        let mut dist = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        dist[source] = 0;
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// All-pairs shortest-path distance matrix (BFS from every node).
    pub fn distance_matrix(&self) -> Vec<Vec<usize>> {
        (0..self.num_qubits())
            .map(|s| self.bfs_distances(s))
            .collect()
    }

    /// Single-source shortest-path distances under a per-edge cost function
    /// (Dijkstra; costs must be non-negative). Unreachable nodes get
    /// `f64::INFINITY`. The O(n²) selection loop is deterministic and fast
    /// enough for the ≤ 84-qubit devices of the study.
    pub fn weighted_distances(
        &self,
        source: usize,
        cost: impl Fn(usize, usize) -> f64,
    ) -> Vec<f64> {
        let n = self.num_qubits();
        let mut dist = vec![f64::INFINITY; n];
        let mut done = vec![false; n];
        dist[source] = 0.0;
        for _ in 0..n {
            let mut u = usize::MAX;
            let mut best = f64::INFINITY;
            for q in 0..n {
                if !done[q] && dist[q] < best {
                    best = dist[q];
                    u = q;
                }
            }
            if u == usize::MAX {
                break; // remaining nodes unreachable
            }
            done[u] = true;
            for v in self.neighbors(u) {
                let next = dist[u] + cost(u, v);
                if next < dist[v] {
                    dist[v] = next;
                }
            }
        }
        dist
    }

    /// All-pairs shortest-path matrix under a per-edge cost function.
    pub fn weighted_distance_matrix(&self, cost: impl Fn(usize, usize) -> f64) -> Vec<Vec<f64>> {
        (0..self.num_qubits())
            .map(|s| self.weighted_distances(s, &cost))
            .collect()
    }

    /// A shortest path from `a` to `b` (inclusive of both endpoints), or
    /// `None` when disconnected.
    pub fn shortest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        if a == b {
            return Some(vec![a]);
        }
        let n = self.num_qubits();
        let mut prev = vec![usize::MAX; n];
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        visited[a] = true;
        queue.push_back(a);
        while let Some(u) = queue.pop_front() {
            if u == b {
                break;
            }
            for &v in &self.adjacency[u] {
                if !visited[v] {
                    visited[v] = true;
                    prev[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if !visited[b] {
            return None;
        }
        let mut path = vec![b];
        let mut cur = b;
        while cur != a {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// True when every qubit can reach every other qubit.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits() == 0 {
            return true;
        }
        self.bfs_distances(0).iter().all(|&d| d != usize::MAX)
    }

    /// Graph diameter. Panics if the graph is disconnected or empty.
    pub fn diameter(&self) -> usize {
        let dm = self.distance_matrix();
        dm.iter()
            .flat_map(|row| row.iter())
            .copied()
            .max()
            .expect("diameter of empty graph")
    }

    /// Average pairwise distance over all ordered pairs including self-pairs
    /// (i.e. `Σ d(i,j) / n²`), matching the paper's Table 1/2 convention.
    pub fn average_distance(&self) -> f64 {
        let n = self.num_qubits();
        if n == 0 {
            return 0.0;
        }
        let dm = self.distance_matrix();
        let total: usize = dm.iter().flat_map(|row| row.iter()).sum();
        total as f64 / (n * n) as f64
    }

    /// Average vertex degree.
    pub fn average_connectivity(&self) -> f64 {
        if self.num_qubits() == 0 {
            return 0.0;
        }
        2.0 * self.num_edges() as f64 / self.num_qubits() as f64
    }

    /// The paper-style structural summary.
    pub fn metrics(&self) -> TopologyMetrics {
        TopologyMetrics {
            qubits: self.num_qubits(),
            diameter: self.diameter(),
            avg_distance: self.average_distance(),
            avg_connectivity: self.average_connectivity(),
        }
    }

    /// Returns the subgraph induced on the first `n` qubits, relabelled
    /// `0..n`. Edge error rates carry over. Panics if `n` exceeds the current
    /// size.
    pub fn induced_prefix(&self, n: usize, name: impl Into<String>) -> CouplingGraph {
        assert!(n <= self.num_qubits());
        let mut g = CouplingGraph::new(name, n);
        g.default_edge_error = self.default_edge_error;
        for (a, b) in self.edges() {
            if a < n && b < n {
                g.add_edge(a, b);
            }
        }
        for (&(a, b), &rate) in &self.edge_error_overrides {
            if a < n && b < n {
                g.set_edge_error(a, b, rate);
            }
        }
        g
    }

    /// Removes up to `count` degree-≤2 boundary nodes (highest index first)
    /// while keeping the graph connected, then relabels qubits contiguously.
    /// Used to trim lattice fragments to an exact qubit budget.
    pub fn truncate_boundary(
        &self,
        target_qubits: usize,
        name: impl Into<String>,
    ) -> CouplingGraph {
        assert!(target_qubits <= self.num_qubits());
        let mut removed = vec![false; self.num_qubits()];
        let mut remaining = self.num_qubits();
        while remaining > target_qubits {
            // Pick the highest-index, lowest-degree node whose removal keeps
            // the graph connected.
            let mut candidates: Vec<usize> =
                (0..self.num_qubits()).filter(|&q| !removed[q]).collect();
            candidates.sort_by_key(|&q| {
                let live_degree = self.adjacency[q].iter().filter(|&&n| !removed[n]).count();
                (live_degree, usize::MAX - q)
            });
            let mut removed_one = false;
            for &q in &candidates {
                removed[q] = true;
                if self.connected_excluding(&removed) {
                    removed_one = true;
                    break;
                }
                removed[q] = false;
            }
            assert!(
                removed_one,
                "could not truncate while preserving connectivity"
            );
            remaining -= 1;
        }
        // Relabel.
        let mut mapping = vec![usize::MAX; self.num_qubits()];
        let mut next = 0;
        for q in 0..self.num_qubits() {
            if !removed[q] {
                mapping[q] = next;
                next += 1;
            }
        }
        let mut g = CouplingGraph::new(name, target_qubits);
        g.default_edge_error = self.default_edge_error;
        for (a, b) in self.edges() {
            if !removed[a] && !removed[b] {
                g.add_edge(mapping[a], mapping[b]);
            }
        }
        for (&(a, b), &rate) in &self.edge_error_overrides {
            if !removed[a] && !removed[b] {
                g.set_edge_error(mapping[a], mapping[b], rate);
            }
        }
        g
    }

    fn connected_excluding(&self, removed: &[bool]) -> bool {
        let n = self.num_qubits();
        let live: Vec<usize> = (0..n).filter(|&q| !removed[q]).collect();
        if live.is_empty() {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[live[0]] = true;
        queue.push_back(live[0]);
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if !removed[v] && !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> CouplingGraph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        CouplingGraph::from_edges("path", n, &edges)
    }

    fn cycle(n: usize) -> CouplingGraph {
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        CouplingGraph::from_edges("cycle", n, &edges)
    }

    fn complete(n: usize) -> CouplingGraph {
        let mut g = CouplingGraph::new("complete", n);
        for a in 0..n {
            for b in (a + 1)..n {
                g.add_edge(a, b);
            }
        }
        g
    }

    #[test]
    fn edges_are_undirected_and_deduplicated() {
        let mut g = CouplingGraph::new("g", 3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn path_metrics() {
        let g = path(5);
        assert_eq!(g.diameter(), 4);
        assert!(g.is_connected());
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        // Sum of all ordered distances on P5 = 2 * 40 = 80? compute: pairwise
        // sum (unordered) = Σ_{d} d*(5-d) = 1*4+2*3+3*2+4*1 = 20 → ordered 40.
        assert!((g.average_distance() - 40.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_metrics() {
        let g = cycle(6);
        assert_eq!(g.diameter(), 3);
        assert!((g.average_connectivity() - 2.0).abs() < 1e-12);
        // Distances from any node: 0,1,1,2,2,3 → sum 9; total 54; /36 = 1.5.
        assert!((g.average_distance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_metrics() {
        let g = complete(5);
        assert_eq!(g.diameter(), 1);
        assert!((g.average_connectivity() - 4.0).abs() < 1e-12);
        assert!((g.average_distance() - 20.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = cycle(8);
        let p = g.shortest_path(0, 4).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p[0], 0);
        assert_eq!(*p.last().unwrap(), 4);
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn shortest_path_to_self() {
        let g = path(3);
        assert_eq!(g.shortest_path(1, 1).unwrap(), vec![1]);
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = CouplingGraph::from_edges("two islands", 4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        assert!(g.shortest_path(0, 3).is_none());
    }

    #[test]
    fn induced_prefix_keeps_inner_edges() {
        let g = complete(5);
        let sub = g.induced_prefix(3, "k3");
        assert_eq!(sub.num_qubits(), 3);
        assert_eq!(sub.num_edges(), 3);
    }

    #[test]
    fn truncate_boundary_preserves_connectivity() {
        let g = path(10);
        let t = g.truncate_boundary(7, "path7");
        assert_eq!(t.num_qubits(), 7);
        assert!(t.is_connected());
    }

    #[test]
    fn edges_iterate_in_lexicographic_order_without_allocation() {
        let g = cycle(5);
        let edges: Vec<(usize, usize)> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 4), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(g.edges().count(), g.num_edges());
    }

    #[test]
    fn edge_errors_default_to_uniform() {
        let g = path(4);
        assert!(g.edge_errors_uniform());
        for ((a, b), err) in g.edge_errors() {
            assert!(g.has_edge(a, b));
            assert_eq!(err, DEFAULT_EDGE_ERROR);
        }
    }

    #[test]
    fn edge_error_overrides_are_order_insensitive() {
        let mut g = path(4);
        g.set_edge_error(2, 1, 0.05);
        assert_eq!(g.edge_error(1, 2), 0.05);
        assert_eq!(g.edge_error(2, 1), 0.05);
        assert_eq!(g.edge_error(0, 1), DEFAULT_EDGE_ERROR);
        assert!(!g.edge_errors_uniform());
        g.set_uniform_edge_error(0.002);
        assert!(g.edge_errors_uniform());
        assert_eq!(g.edge_error(1, 2), 0.002);
    }

    #[test]
    fn overriding_every_edge_to_one_rate_counts_as_uniform() {
        let mut g = path(4);
        for (a, b) in g.edges().collect::<Vec<_>>() {
            g.set_edge_error(a, b, 0.005);
        }
        assert!(g.edge_errors_uniform(), "all edges agree at 0.005");
        g.set_edge_error(1, 2, 0.009);
        assert!(!g.edge_errors_uniform());
    }

    #[test]
    fn partial_overrides_at_a_non_default_rate_are_heterogeneous() {
        let mut g = path(4);
        g.set_edge_error(0, 1, 0.005); // other edges still at the default
        assert!(!g.edge_errors_uniform());
    }

    #[test]
    fn scale_edge_error_multiplies_and_clamps() {
        let mut g = path(3);
        g.scale_edge_error(0, 1, 10.0);
        assert!((g.edge_error(0, 1) - 10.0 * DEFAULT_EDGE_ERROR).abs() < 1e-15);
        g.scale_edge_error(0, 1, 1e9);
        assert!(g.edge_error(0, 1) < 1.0);
    }

    #[test]
    #[should_panic(expected = "is not an edge")]
    fn setting_error_on_a_non_edge_panics() {
        let mut g = path(4);
        g.set_edge_error(0, 3, 0.1);
    }

    #[test]
    fn weighted_distances_match_bfs_under_unit_costs() {
        let g = cycle(8);
        for s in 0..8 {
            let bfs = g.bfs_distances(s);
            let dij = g.weighted_distances(s, |_, _| 1.0);
            for (h, w) in bfs.iter().zip(&dij) {
                assert!((*h as f64 - w).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weighted_distances_route_around_expensive_edges() {
        // Square 0-1-2-3-0: make edge (0,1) cost 10; the cheapest 0→1 path is
        // now 0-3-2-1 at cost 3.
        let g = CouplingGraph::from_edges("sq", 4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let cost = |a: usize, b: usize| {
            if (a.min(b), a.max(b)) == (0, 1) {
                10.0
            } else {
                1.0
            }
        };
        let d = g.weighted_distances(0, cost);
        assert!((d[1] - 3.0).abs() < 1e-12);
        let dm = g.weighted_distance_matrix(cost);
        assert!((dm[1][0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_distances_mark_unreachable_nodes_infinite() {
        let g = CouplingGraph::from_edges("two islands", 4, &[(0, 1), (2, 3)]);
        let d = g.weighted_distances(0, |_, _| 1.0);
        assert!(d[2].is_infinite() && d[3].is_infinite());
        assert!((d[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncation_and_induction_carry_edge_errors() {
        let mut g = path(10);
        g.set_edge_error(0, 1, 0.04);
        g.set_edge_error(8, 9, 0.09);
        let t = g.truncate_boundary(7, "path7");
        assert_eq!(t.edge_error(0, 1), 0.04); // low end survives truncation
        let sub = g.induced_prefix(5, "path5");
        assert_eq!(sub.edge_error(0, 1), 0.04);
        assert_eq!(sub.edge_error(3, 4), DEFAULT_EDGE_ERROR);
    }

    #[test]
    fn metrics_struct_matches_individual_queries() {
        let g = cycle(6);
        let m = g.metrics();
        assert_eq!(m.qubits, 6);
        assert_eq!(m.diameter, 3);
        assert!((m.avg_distance - 1.5).abs() < 1e-12);
        assert!((m.avg_connectivity - 2.0).abs() < 1e-12);
    }
}
