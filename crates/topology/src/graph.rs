//! Undirected coupling graphs and their structural metrics.
//!
//! A coupling graph records which physical qubit pairs can host a native
//! two-qubit gate. The paper characterizes every topology by the metrics of
//! Tables 1 and 2 — qubit count, diameter, average pairwise distance and
//! average connectivity (degree) — all of which are provided here, along with
//! the shortest-path machinery the router needs.

use std::collections::{BTreeSet, VecDeque};

/// An undirected graph over qubits `0..num_qubits`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingGraph {
    name: String,
    adjacency: Vec<BTreeSet<usize>>,
}

/// The structural summary reported in the paper's Tables 1 and 2.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct TopologyMetrics {
    /// Number of qubits.
    pub qubits: usize,
    /// Graph diameter (longest shortest path).
    pub diameter: usize,
    /// Average pairwise distance, averaged over *all ordered pairs including
    /// self-pairs* (the convention that reproduces the paper's Table 1).
    pub avg_distance: f64,
    /// Average vertex degree ("average connectivity").
    pub avg_connectivity: f64,
}

impl CouplingGraph {
    /// Creates an edgeless graph on `num_qubits` qubits.
    pub fn new(name: impl Into<String>, num_qubits: usize) -> Self {
        Self {
            name: name.into(),
            adjacency: vec![BTreeSet::new(); num_qubits],
        }
    }

    /// Builds a graph from an explicit edge list.
    pub fn from_edges(
        name: impl Into<String>,
        num_qubits: usize,
        edges: &[(usize, usize)],
    ) -> Self {
        let mut g = Self::new(name, num_qubits);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Human-readable topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the graph (used by truncation and catalog helpers).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.adjacency.len()
    }

    /// Adds an undirected edge; self-loops and duplicates are ignored.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(
            a < self.num_qubits() && b < self.num_qubits(),
            "edge ({a},{b}) out of range"
        );
        if a == b {
            return;
        }
        self.adjacency[a].insert(b);
        self.adjacency[b].insert(a);
    }

    /// True when `(a, b)` is an edge.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adjacency.get(a).is_some_and(|s| s.contains(&b))
    }

    /// Neighbors of `q` in ascending order.
    pub fn neighbors(&self, q: usize) -> impl Iterator<Item = usize> + '_ {
        self.adjacency[q].iter().copied()
    }

    /// Degree of `q`.
    pub fn degree(&self, q: usize) -> usize {
        self.adjacency[q].len()
    }

    /// All edges as `(min, max)` pairs in lexicographic order.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (a, nbrs) in self.adjacency.iter().enumerate() {
            for &b in nbrs {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(|s| s.len()).sum::<usize>() / 2
    }

    /// Breadth-first distances from `source`; unreachable nodes get
    /// `usize::MAX`.
    pub fn bfs_distances(&self, source: usize) -> Vec<usize> {
        let n = self.num_qubits();
        let mut dist = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        dist[source] = 0;
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// All-pairs shortest-path distance matrix (BFS from every node).
    pub fn distance_matrix(&self) -> Vec<Vec<usize>> {
        (0..self.num_qubits())
            .map(|s| self.bfs_distances(s))
            .collect()
    }

    /// A shortest path from `a` to `b` (inclusive of both endpoints), or
    /// `None` when disconnected.
    pub fn shortest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        if a == b {
            return Some(vec![a]);
        }
        let n = self.num_qubits();
        let mut prev = vec![usize::MAX; n];
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        visited[a] = true;
        queue.push_back(a);
        while let Some(u) = queue.pop_front() {
            if u == b {
                break;
            }
            for &v in &self.adjacency[u] {
                if !visited[v] {
                    visited[v] = true;
                    prev[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if !visited[b] {
            return None;
        }
        let mut path = vec![b];
        let mut cur = b;
        while cur != a {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// True when every qubit can reach every other qubit.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits() == 0 {
            return true;
        }
        self.bfs_distances(0).iter().all(|&d| d != usize::MAX)
    }

    /// Graph diameter. Panics if the graph is disconnected or empty.
    pub fn diameter(&self) -> usize {
        let dm = self.distance_matrix();
        dm.iter()
            .flat_map(|row| row.iter())
            .copied()
            .max()
            .expect("diameter of empty graph")
    }

    /// Average pairwise distance over all ordered pairs including self-pairs
    /// (i.e. `Σ d(i,j) / n²`), matching the paper's Table 1/2 convention.
    pub fn average_distance(&self) -> f64 {
        let n = self.num_qubits();
        if n == 0 {
            return 0.0;
        }
        let dm = self.distance_matrix();
        let total: usize = dm.iter().flat_map(|row| row.iter()).sum();
        total as f64 / (n * n) as f64
    }

    /// Average vertex degree.
    pub fn average_connectivity(&self) -> f64 {
        if self.num_qubits() == 0 {
            return 0.0;
        }
        2.0 * self.num_edges() as f64 / self.num_qubits() as f64
    }

    /// The paper-style structural summary.
    pub fn metrics(&self) -> TopologyMetrics {
        TopologyMetrics {
            qubits: self.num_qubits(),
            diameter: self.diameter(),
            avg_distance: self.average_distance(),
            avg_connectivity: self.average_connectivity(),
        }
    }

    /// Returns the subgraph induced on the first `n` qubits, relabelled
    /// `0..n`. Panics if `n` exceeds the current size.
    pub fn induced_prefix(&self, n: usize, name: impl Into<String>) -> CouplingGraph {
        assert!(n <= self.num_qubits());
        let mut g = CouplingGraph::new(name, n);
        for (a, b) in self.edges() {
            if a < n && b < n {
                g.add_edge(a, b);
            }
        }
        g
    }

    /// Removes up to `count` degree-≤2 boundary nodes (highest index first)
    /// while keeping the graph connected, then relabels qubits contiguously.
    /// Used to trim lattice fragments to an exact qubit budget.
    pub fn truncate_boundary(
        &self,
        target_qubits: usize,
        name: impl Into<String>,
    ) -> CouplingGraph {
        assert!(target_qubits <= self.num_qubits());
        let mut removed = vec![false; self.num_qubits()];
        let mut remaining = self.num_qubits();
        while remaining > target_qubits {
            // Pick the highest-index, lowest-degree node whose removal keeps
            // the graph connected.
            let mut candidates: Vec<usize> =
                (0..self.num_qubits()).filter(|&q| !removed[q]).collect();
            candidates.sort_by_key(|&q| {
                let live_degree = self.adjacency[q].iter().filter(|&&n| !removed[n]).count();
                (live_degree, usize::MAX - q)
            });
            let mut removed_one = false;
            for &q in &candidates {
                removed[q] = true;
                if self.connected_excluding(&removed) {
                    removed_one = true;
                    break;
                }
                removed[q] = false;
            }
            assert!(
                removed_one,
                "could not truncate while preserving connectivity"
            );
            remaining -= 1;
        }
        // Relabel.
        let mut mapping = vec![usize::MAX; self.num_qubits()];
        let mut next = 0;
        for q in 0..self.num_qubits() {
            if !removed[q] {
                mapping[q] = next;
                next += 1;
            }
        }
        let mut g = CouplingGraph::new(name, target_qubits);
        for (a, b) in self.edges() {
            if !removed[a] && !removed[b] {
                g.add_edge(mapping[a], mapping[b]);
            }
        }
        g
    }

    fn connected_excluding(&self, removed: &[bool]) -> bool {
        let n = self.num_qubits();
        let live: Vec<usize> = (0..n).filter(|&q| !removed[q]).collect();
        if live.is_empty() {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[live[0]] = true;
        queue.push_back(live[0]);
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if !removed[v] && !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> CouplingGraph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        CouplingGraph::from_edges("path", n, &edges)
    }

    fn cycle(n: usize) -> CouplingGraph {
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        CouplingGraph::from_edges("cycle", n, &edges)
    }

    fn complete(n: usize) -> CouplingGraph {
        let mut g = CouplingGraph::new("complete", n);
        for a in 0..n {
            for b in (a + 1)..n {
                g.add_edge(a, b);
            }
        }
        g
    }

    #[test]
    fn edges_are_undirected_and_deduplicated() {
        let mut g = CouplingGraph::new("g", 3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn path_metrics() {
        let g = path(5);
        assert_eq!(g.diameter(), 4);
        assert!(g.is_connected());
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        // Sum of all ordered distances on P5 = 2 * 40 = 80? compute: pairwise
        // sum (unordered) = Σ_{d} d*(5-d) = 1*4+2*3+3*2+4*1 = 20 → ordered 40.
        assert!((g.average_distance() - 40.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_metrics() {
        let g = cycle(6);
        assert_eq!(g.diameter(), 3);
        assert!((g.average_connectivity() - 2.0).abs() < 1e-12);
        // Distances from any node: 0,1,1,2,2,3 → sum 9; total 54; /36 = 1.5.
        assert!((g.average_distance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_metrics() {
        let g = complete(5);
        assert_eq!(g.diameter(), 1);
        assert!((g.average_connectivity() - 4.0).abs() < 1e-12);
        assert!((g.average_distance() - 20.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = cycle(8);
        let p = g.shortest_path(0, 4).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p[0], 0);
        assert_eq!(*p.last().unwrap(), 4);
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn shortest_path_to_self() {
        let g = path(3);
        assert_eq!(g.shortest_path(1, 1).unwrap(), vec![1]);
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = CouplingGraph::from_edges("two islands", 4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        assert!(g.shortest_path(0, 3).is_none());
    }

    #[test]
    fn induced_prefix_keeps_inner_edges() {
        let g = complete(5);
        let sub = g.induced_prefix(3, "k3");
        assert_eq!(sub.num_qubits(), 3);
        assert_eq!(sub.num_edges(), 3);
    }

    #[test]
    fn truncate_boundary_preserves_connectivity() {
        let g = path(10);
        let t = g.truncate_boundary(7, "path7");
        assert_eq!(t.num_qubits(), 7);
        assert!(t.is_connected());
    }

    #[test]
    fn metrics_struct_matches_individual_queries() {
        let g = cycle(6);
        let m = g.metrics();
        assert_eq!(m.qubits, 6);
        assert_eq!(m.diameter, 3);
        assert!((m.avg_distance - 1.5).abs() < 1e-12);
        assert!((m.avg_connectivity - 2.0).abs() < 1e-12);
    }
}
