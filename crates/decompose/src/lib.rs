//! # snailqc-decompose
//!
//! Two-qubit gate decomposition machinery for the `snailqc` workspace:
//!
//! * [`basis::BasisGate`] — the paper's three native basis gates (CNOT for the
//!   CR modulator, SYC for the FSIM coupler, √iSWAP for the SNAIL) with the
//!   analytic Weyl-chamber counting rules used by basis translation
//!   (paper §2.3, Observation 1).
//! * [`nuop`] — the NuOp-style numerical template decomposer used to study
//!   bases without analytic decompositions (`ⁿ√iSWAP`, `n > 2`), Eq. 10–11.
//! * [`fidelity`] — the linear-decoherence fidelity model of Eq. 12–13.
//! * [`study`] — the full §6.3 / Fig. 15 pulse-duration sensitivity study.

#![warn(missing_docs)]

pub mod basis;
pub mod fidelity;
pub mod nuop;
pub mod study;

pub use basis::BasisGate;
pub use fidelity::{nth_root_basis_fidelity, pulse_duration, total_fidelity};
pub use nuop::{hilbert_schmidt_fidelity, NuOpDecomposer, TemplateFit};
pub use study::{run_study, StudyConfig, StudyResult};
