//! Decoherence-aware fidelity model for the `ⁿ√iSWAP` family
//! (paper §6.3, Eq. 12–13).
//!
//! The SNAIL produces `ⁿ√iSWAP` by shortening the pump pulse, so decoherence
//! per application scales down with `1/n` (Eq. 12). The total fidelity of a
//! decomposition with `k` basis applications combines the approximation error
//! of the template with the decoherence of its pulses (Eq. 13); for each
//! basis fidelity the best `k` is the one maximizing that product.

use crate::nuop::TemplateFit;

/// Decoherence-limited fidelity of one `ⁿ√iSWAP` pulse given the fidelity of
/// a full iSWAP pulse (paper Eq. 12): `F_b(ⁿ√iSWAP) = 1 − (1 − F_b(iSWAP))/n`.
pub fn nth_root_basis_fidelity(fb_iswap: f64, n: u32) -> f64 {
    assert!(
        (0.0..=1.0).contains(&fb_iswap),
        "fidelity must be in [0, 1]"
    );
    1.0 - (1.0 - fb_iswap) / f64::from(n.max(1))
}

/// Total fidelity of a decomposition (paper Eq. 13):
/// `F_t = F_d · F_b^k` for a template with `k` basis applications, each with
/// per-pulse fidelity `F_b`.
pub fn total_fidelity(decomposition_fidelity: f64, basis_fidelity: f64, k: usize) -> f64 {
    decomposition_fidelity * basis_fidelity.powi(k as i32)
}

/// Total pulse duration of `k` applications of `ⁿ√iSWAP`, in units of a full
/// iSWAP pulse.
pub fn pulse_duration(k: usize, n: u32) -> f64 {
    k as f64 / f64::from(n.max(1))
}

/// One point of the Fig. 15 study: a template size evaluated under the
/// decoherence model.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct FidelityPoint {
    /// Root index `n` of the `ⁿ√iSWAP` basis.
    pub n: u32,
    /// Number of basis applications.
    pub k: usize,
    /// Decomposition (approximation) fidelity `F_d`.
    pub decomposition_fidelity: f64,
    /// Per-pulse basis fidelity `F_b(ⁿ√iSWAP)`.
    pub basis_fidelity: f64,
    /// Total fidelity `F_t` (Eq. 13).
    pub total_fidelity: f64,
    /// Total pulse duration `k/n` in iSWAP units.
    pub pulse_duration: f64,
}

/// Evaluates Eq. 13 for a set of template fits of the same target in the
/// `ⁿ√iSWAP` basis and returns every point plus the best one.
pub fn evaluate_fits(
    fits: &[TemplateFit],
    n: u32,
    fb_iswap: f64,
) -> (Vec<FidelityPoint>, FidelityPoint) {
    assert!(!fits.is_empty());
    let fb = nth_root_basis_fidelity(fb_iswap, n);
    let points: Vec<FidelityPoint> = fits
        .iter()
        .map(|fit| FidelityPoint {
            n,
            k: fit.k,
            decomposition_fidelity: fit.fidelity,
            basis_fidelity: fb,
            total_fidelity: total_fidelity(fit.fidelity, fb, fit.k),
            pulse_duration: pulse_duration(fit.k, n),
        })
        .collect();
    let best = *points
        .iter()
        .max_by(|a, b| a.total_fidelity.partial_cmp(&b.total_fidelity).unwrap())
        .expect("non-empty");
    (points, best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_fidelity_scales_linearly_with_inverse_n() {
        // Paper's example: a 90%-fidelity iSWAP gives a 95% √iSWAP.
        assert!((nth_root_basis_fidelity(0.90, 2) - 0.95).abs() < 1e-12);
        assert!((nth_root_basis_fidelity(0.99, 1) - 0.99).abs() < 1e-12);
        assert!((nth_root_basis_fidelity(0.99, 4) - 0.9975).abs() < 1e-12);
        // Larger n always improves the per-pulse fidelity.
        for n in 2..8 {
            assert!(nth_root_basis_fidelity(0.97, n + 1) > nth_root_basis_fidelity(0.97, n));
        }
    }

    #[test]
    fn total_fidelity_composes_multiplicatively() {
        let ft = total_fidelity(0.999, 0.99, 3);
        assert!((ft - 0.999 * 0.99f64.powi(3)).abs() < 1e-12);
        // More gates at the same per-gate fidelity always hurt.
        assert!(total_fidelity(1.0, 0.99, 4) < total_fidelity(1.0, 0.99, 3));
    }

    #[test]
    fn pulse_duration_examples_from_paper() {
        // §6.3: k=3 of √iSWAP lasts 1.5 iSWAPs; k=4 of ³√iSWAP lasts 1.33.
        assert!((pulse_duration(3, 2) - 1.5).abs() < 1e-12);
        assert!((pulse_duration(4, 3) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn evaluate_fits_picks_best_tradeoff() {
        // Synthetic fits: k=2 approximate, k=3 exact.
        let fits = vec![
            TemplateFit {
                k: 2,
                fidelity: 0.97,
                params: vec![],
            },
            TemplateFit {
                k: 3,
                fidelity: 0.999999,
                params: vec![],
            },
        ];
        // With a very good basis gate the exact k=3 decomposition wins.
        let (_, best) = evaluate_fits(&fits, 2, 0.999);
        assert_eq!(best.k, 3);
        // With a poor basis gate the shorter, approximate template wins.
        let (_, best) = evaluate_fits(&fits, 2, 0.90);
        assert_eq!(best.k, 2);
    }

    #[test]
    #[should_panic(expected = "fidelity must be in [0, 1]")]
    fn rejects_out_of_range_fidelity() {
        nth_root_basis_fidelity(1.2, 2);
    }
}
