//! NuOp-style numerical template decomposition (paper §6.3, Eq. 10–11).
//!
//! To study basis gates with no known analytic decomposition (`ⁿ√iSWAP` for
//! `n > 2`), the paper reproduces NuOp: build a template that interleaves `k`
//! applications of the basis gate with parameterized single-qubit layers and
//! numerically maximize the Hilbert–Schmidt fidelity against the target
//! unitary. This module implements that engine with a gradient-based
//! optimizer (central differences + Adam) and multiple random restarts.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use snailqc_circuit::{Circuit, Gate};
use snailqc_math::gates::u3;
use snailqc_math::{Matrix2, Matrix4};

/// Hilbert–Schmidt gate fidelity `|Tr(U_d† U_t)| / dim` (paper Eq. 11).
pub fn hilbert_schmidt_fidelity(a: &Matrix4, b: &Matrix4) -> f64 {
    a.hs_inner(b).abs() / 4.0
}

/// The result of fitting a `k`-gate template to a target unitary.
#[derive(Debug, Clone)]
pub struct TemplateFit {
    /// Number of basis-gate applications in the template.
    pub k: usize,
    /// Achieved Hilbert–Schmidt fidelity `F_d`.
    pub fidelity: f64,
    /// Optimized single-qubit parameters, 6 per interleaved layer
    /// (`θ, φ, λ` for each of the two qubits), `6 (k + 1)` in total.
    pub params: Vec<f64>,
}

impl TemplateFit {
    /// Decomposition infidelity `1 - F_d`.
    pub fn infidelity(&self) -> f64 {
        1.0 - self.fidelity
    }
}

/// Numerical template decomposer for a fixed two-qubit basis gate.
#[derive(Debug, Clone)]
pub struct NuOpDecomposer {
    basis: Matrix4,
    basis_gate: Gate,
    max_iterations: usize,
    restarts: usize,
    tolerance: f64,
}

impl NuOpDecomposer {
    /// Creates a decomposer for the given basis gate with default optimizer
    /// settings (3 restarts, 250 Adam iterations, stop at infidelity 1e-10).
    pub fn new(basis_gate: Gate) -> Self {
        let basis = basis_gate.matrix4().expect("basis gate must be two-qubit");
        Self {
            basis,
            basis_gate,
            max_iterations: 250,
            restarts: 3,
            tolerance: 1e-10,
        }
    }

    /// Overrides the optimizer iteration budget.
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Overrides the number of random restarts.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// The basis gate unitary.
    pub fn basis_matrix(&self) -> Matrix4 {
        self.basis
    }

    /// Evaluates the template unitary for a parameter vector.
    pub fn template_unitary(&self, params: &[f64], k: usize) -> Matrix4 {
        assert_eq!(params.len(), 6 * (k + 1));
        let mut u = local_layer(&params[0..6]);
        for i in 0..k {
            u = self.basis * u;
            let offset = 6 * (i + 1);
            u = local_layer(&params[offset..offset + 6]) * u;
        }
        u
    }

    /// Builds the template as an explicit two-qubit circuit.
    pub fn template_circuit(&self, params: &[f64], k: usize) -> Circuit {
        assert_eq!(params.len(), 6 * (k + 1));
        let mut c = Circuit::new(2);
        let push_layer = |c: &mut Circuit, p: &[f64]| {
            c.push(Gate::U3(p[0], p[1], p[2]), &[0]);
            c.push(Gate::U3(p[3], p[4], p[5]), &[1]);
        };
        push_layer(&mut c, &params[0..6]);
        for i in 0..k {
            c.push(self.basis_gate.clone(), &[0, 1]);
            let offset = 6 * (i + 1);
            push_layer(&mut c, &params[offset..offset + 6]);
        }
        c
    }

    /// Fits a `k`-application template to `target`, returning the best fit
    /// over the configured number of random restarts.
    pub fn fit(&self, target: &Matrix4, k: usize, seed: u64) -> TemplateFit {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 6 * (k + 1);
        let mut best = TemplateFit {
            k,
            fidelity: -1.0,
            params: vec![0.0; dim],
        };
        for _ in 0..self.restarts {
            let mut params: Vec<f64> = (0..dim)
                .map(|_| rng.gen::<f64>() * std::f64::consts::TAU)
                .collect();
            let fid = self.optimize(target, k, &mut params);
            if fid > best.fidelity {
                best.fidelity = fid;
                best.params = params;
            }
            if best.infidelity() < self.tolerance {
                break;
            }
        }
        best
    }

    /// Increases `k` from `k_min` until the fit reaches `min_fidelity` or
    /// `k_max` is hit, returning the first satisfying (or final) fit.
    pub fn fit_adaptive(
        &self,
        target: &Matrix4,
        k_min: usize,
        k_max: usize,
        min_fidelity: f64,
        seed: u64,
    ) -> TemplateFit {
        let mut last = None;
        for k in k_min..=k_max {
            let fit = self.fit(target, k, seed.wrapping_add(k as u64));
            if fit.fidelity >= min_fidelity {
                return fit;
            }
            last = Some(fit);
        }
        last.expect("k_max must be >= k_min")
    }

    /// Adam ascent on the Hilbert–Schmidt fidelity with central-difference
    /// gradients. Returns the final fidelity; `params` is updated in place.
    fn optimize(&self, target: &Matrix4, k: usize, params: &mut [f64]) -> f64 {
        let dim = params.len();
        let eval = |p: &[f64]| hilbert_schmidt_fidelity(&self.template_unitary(p, k), target);

        let mut m = vec![0.0; dim];
        let mut v = vec![0.0; dim];
        let (beta1, beta2, eps) = (0.9, 0.999, 1e-8);
        let mut lr = 0.15;
        let h = 1e-5;
        let mut best_f = eval(params);
        let mut best_p = params.to_vec();
        let mut stall = 0usize;

        for t in 1..=self.max_iterations {
            // Central-difference gradient.
            let mut grad = vec![0.0; dim];
            for i in 0..dim {
                let orig = params[i];
                params[i] = orig + h;
                let fp = eval(params);
                params[i] = orig - h;
                let fm = eval(params);
                params[i] = orig;
                grad[i] = (fp - fm) / (2.0 * h);
            }
            for i in 0..dim {
                m[i] = beta1 * m[i] + (1.0 - beta1) * grad[i];
                v[i] = beta2 * v[i] + (1.0 - beta2) * grad[i] * grad[i];
                let mh = m[i] / (1.0 - beta1.powi(t as i32));
                let vh = v[i] / (1.0 - beta2.powi(t as i32));
                params[i] += lr * mh / (vh.sqrt() + eps);
            }
            let f = eval(params);
            if f > best_f + 1e-14 {
                best_f = f;
                best_p.copy_from_slice(params);
                stall = 0;
            } else {
                stall += 1;
                if stall.is_multiple_of(20) {
                    lr *= 0.5;
                }
                if stall > 60 {
                    break;
                }
            }
            if 1.0 - best_f < self.tolerance {
                break;
            }
        }
        params.copy_from_slice(&best_p);
        best_f
    }
}

/// Builds the tensor product of two `U3` gates from six parameters.
fn local_layer(p: &[f64]) -> Matrix4 {
    let a: Matrix2 = u3(p[0], p[1], p[2]);
    let b: Matrix2 = u3(p[3], p[4], p[5]);
    a.kron(&b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snailqc_math::gates;
    use snailqc_math::random::haar_unitary4;

    #[test]
    fn hs_fidelity_bounds() {
        let id = Matrix4::identity();
        assert!((hilbert_schmidt_fidelity(&id, &id) - 1.0).abs() < 1e-12);
        let cx = gates::cx();
        let f = hilbert_schmidt_fidelity(&id, &cx);
        assert!((0.0..1.0).contains(&f));
        // Global phase does not matter.
        let phased = cx.scale(snailqc_math::C64::cis(0.7));
        assert!((hilbert_schmidt_fidelity(&cx, &phased) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn template_unitary_matches_template_circuit() {
        let d = NuOpDecomposer::new(Gate::SqrtISwap);
        let params: Vec<f64> = (0..18).map(|i| 0.1 * i as f64).collect();
        let u = d.template_unitary(&params, 2);
        let c = d.template_circuit(&params, 2);
        // Multiply the circuit's gates manually on two qubits.
        let mut acc = Matrix4::identity();
        for inst in c.instructions() {
            let g = match inst.gate.num_qubits() {
                1 => {
                    let m = inst.gate.matrix2().unwrap();
                    if inst.qubits[0] == 0 {
                        snailqc_math::gates::on_qubit0(&m)
                    } else {
                        snailqc_math::gates::on_qubit1(&m)
                    }
                }
                _ => inst.gate.matrix4().unwrap(),
            };
            acc = g * acc;
        }
        assert!(acc.approx_eq(&u, 1e-9));
    }

    #[test]
    fn recovers_a_single_basis_gate_with_k1() {
        let d = NuOpDecomposer::new(Gate::SqrtISwap).with_max_iterations(150);
        let fit = d.fit(&gates::sqrt_iswap(), 1, 3);
        assert!(fit.fidelity > 1.0 - 1e-6, "fidelity {}", fit.fidelity);
    }

    #[test]
    fn cnot_needs_two_sqrt_iswaps() {
        let d = NuOpDecomposer::new(Gate::SqrtISwap).with_max_iterations(300);
        let one = d.fit(&gates::cx(), 1, 5);
        let two = d.fit(&gates::cx(), 2, 5);
        assert!(
            one.fidelity < 0.99,
            "k=1 should be insufficient: {}",
            one.fidelity
        );
        assert!(
            two.fidelity > 1.0 - 1e-5,
            "k=2 should be exact: {}",
            two.fidelity
        );
    }

    #[test]
    fn haar_target_reaches_high_fidelity_with_three_sqrt_iswaps() {
        let mut rng = StdRng::seed_from_u64(11);
        let target = haar_unitary4(&mut rng);
        let d = NuOpDecomposer::new(Gate::SqrtISwap)
            .with_max_iterations(400)
            .with_restarts(4);
        let fit = d.fit(&target, 3, 7);
        assert!(fit.fidelity > 1.0 - 1e-3, "fidelity {}", fit.fidelity);
    }

    #[test]
    fn adaptive_fit_stops_at_sufficient_k() {
        let d = NuOpDecomposer::new(Gate::SqrtISwap).with_max_iterations(250);
        let fit = d.fit_adaptive(&gates::cz(), 1, 3, 0.999, 13);
        assert_eq!(fit.k, 2);
        assert!(fit.fidelity > 0.999);
    }

    #[test]
    fn fidelity_never_exceeds_one() {
        let d = NuOpDecomposer::new(Gate::SqrtISwap).with_max_iterations(100);
        let fit = d.fit(&gates::swap(), 3, 17);
        assert!(fit.fidelity <= 1.0 + 1e-9);
        assert!(fit.infidelity() >= -1e-9);
    }
}
