//! The pulse-duration sensitivity study of paper §6.3 / Fig. 15.
//!
//! For `N` Haar-random two-qubit targets and each basis gate `ⁿ√iSWAP`
//! (`n = 2..7`), the study fits templates of increasing size `k`, records the
//! average decomposition infidelity per `k` (Fig. 15 top-left), the pulse
//! duration of near-exact decompositions (top-right), and the best total
//! fidelity under the decoherence model as a function of the iSWAP pulse
//! fidelity (bottom).

use crate::fidelity::{evaluate_fits, nth_root_basis_fidelity, total_fidelity};
use crate::nuop::{NuOpDecomposer, TemplateFit};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snailqc_circuit::Gate;
use snailqc_math::random::haar_unitary4;
use snailqc_math::Matrix4;

/// Configuration of the Fig. 15 study.
#[derive(Debug, Clone, serde::Serialize)]
pub struct StudyConfig {
    /// Number of Haar-random target unitaries (the paper uses N = 50).
    pub samples: usize,
    /// Root indices `n` of the `ⁿ√iSWAP` bases to evaluate.
    pub roots: Vec<u32>,
    /// Template sizes `k` to fit.
    pub template_sizes: Vec<usize>,
    /// iSWAP pulse fidelities for the total-fidelity sweep (x-axis of
    /// Fig. 15 bottom).
    pub iswap_fidelities: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
    /// Optimizer iteration budget per fit.
    pub optimizer_iterations: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            samples: 50,
            roots: vec![2, 3, 4, 5, 6, 7],
            template_sizes: (2..=8).collect(),
            iswap_fidelities: vec![0.90, 0.925, 0.95, 0.975, 0.99, 1.0],
            seed: 2023,
            optimizer_iterations: 220,
        }
    }
}

impl StudyConfig {
    /// A reduced configuration suitable for tests and CI smoke runs.
    pub fn quick() -> Self {
        Self {
            samples: 3,
            roots: vec![2, 3, 4],
            template_sizes: (2..=5).collect(),
            iswap_fidelities: vec![0.95, 0.99],
            seed: 7,
            optimizer_iterations: 120,
        }
    }
}

/// Average decomposition infidelity for one `(n, k)` cell (Fig. 15 top-left).
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct InfidelityCell {
    /// Root index of the basis gate.
    pub n: u32,
    /// Template size.
    pub k: usize,
    /// Average `1 − F_d` over the sampled targets.
    pub avg_infidelity: f64,
    /// Pulse duration `k / n` in iSWAP units.
    pub pulse_duration: f64,
}

/// Average best total fidelity for one `(n, F_b)` cell (Fig. 15 bottom).
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct TotalFidelityCell {
    /// Root index of the basis gate.
    pub n: u32,
    /// iSWAP pulse fidelity on the x-axis.
    pub fb_iswap: f64,
    /// Average over targets of `max_k F_d(k) · F_b(ⁿ√iSWAP)^k`.
    pub avg_total_fidelity: f64,
}

/// Full output of the Fig. 15 study.
#[derive(Debug, Clone, serde::Serialize)]
pub struct StudyResult {
    /// The configuration that produced this result.
    pub config: StudyConfig,
    /// Fig. 15 top-left / top-right data.
    pub infidelity_grid: Vec<InfidelityCell>,
    /// Fig. 15 bottom data.
    pub total_fidelity_grid: Vec<TotalFidelityCell>,
}

impl StudyResult {
    /// Average decomposition infidelity for a given `(n, k)`.
    pub fn infidelity(&self, n: u32, k: usize) -> Option<f64> {
        self.infidelity_grid
            .iter()
            .find(|c| c.n == n && c.k == k)
            .map(|c| c.avg_infidelity)
    }

    /// Average best total fidelity for a given `(n, fb)`.
    pub fn total(&self, n: u32, fb: f64) -> Option<f64> {
        self.total_fidelity_grid
            .iter()
            .find(|c| c.n == n && (c.fb_iswap - fb).abs() < 1e-12)
            .map(|c| c.avg_total_fidelity)
    }

    /// The paper's headline: relative infidelity reduction of the `n`-th root
    /// basis versus √iSWAP at the given iSWAP fidelity
    /// (`25%` for `⁴√iSWAP` at `F_b(iSWAP) = 0.99`).
    pub fn infidelity_reduction_vs_sqrt_iswap(&self, n: u32, fb: f64) -> Option<f64> {
        let sqrt = self.total(2, fb)?;
        let other = self.total(n, fb)?;
        let inf_sqrt = 1.0 - sqrt;
        let inf_other = 1.0 - other;
        if inf_sqrt <= 0.0 {
            return None;
        }
        Some((inf_sqrt - inf_other) / inf_sqrt)
    }
}

/// Runs the full study.
pub fn run_study(config: &StudyConfig) -> StudyResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let targets: Vec<Matrix4> = (0..config.samples)
        .map(|_| haar_unitary4(&mut rng))
        .collect();

    let mut infidelity_grid = Vec::new();
    let mut total_fidelity_grid = Vec::new();

    for &n in &config.roots {
        let decomposer = NuOpDecomposer::new(Gate::ISwapPow(1.0 / f64::from(n)))
            .with_max_iterations(config.optimizer_iterations)
            .with_restarts(2);

        // Fit every (target, k) pair once and reuse across both sub-figures.
        let mut fits_per_target: Vec<Vec<TemplateFit>> = Vec::with_capacity(targets.len());
        for (t_idx, target) in targets.iter().enumerate() {
            let fits: Vec<TemplateFit> = config
                .template_sizes
                .iter()
                .map(|&k| decomposer.fit(target, k, config.seed ^ (t_idx as u64) << 8 ^ (k as u64)))
                .collect();
            fits_per_target.push(fits);
        }

        for (ki, &k) in config.template_sizes.iter().enumerate() {
            let avg_infidelity = fits_per_target
                .iter()
                .map(|fits| fits[ki].infidelity().max(0.0))
                .sum::<f64>()
                / targets.len() as f64;
            infidelity_grid.push(InfidelityCell {
                n,
                k,
                avg_infidelity,
                pulse_duration: k as f64 / f64::from(n),
            });
        }

        for &fb in &config.iswap_fidelities {
            let avg_total = fits_per_target
                .iter()
                .map(|fits| evaluate_fits(fits, n, fb).1.total_fidelity)
                .sum::<f64>()
                / targets.len() as f64;
            total_fidelity_grid.push(TotalFidelityCell {
                n,
                fb_iswap: fb,
                avg_total_fidelity: avg_total,
            });
        }
    }

    StudyResult {
        config: config.clone(),
        infidelity_grid,
        total_fidelity_grid,
    }
}

/// Analytic shortcut used by tests and the quick example: the best total
/// fidelity attainable assuming exact decompositions with the worst-case
/// template sizes `k*(n)` (3 for √iSWAP, 4–5 for deeper roots following the
/// paper's duration argument).
pub fn ideal_total_fidelity(n: u32, k: usize, fb_iswap: f64) -> f64 {
    total_fidelity(1.0, nth_root_basis_fidelity(fb_iswap, n), k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_runs_and_is_monotone_in_k() {
        let result = run_study(&StudyConfig::quick());
        // For the √iSWAP basis, infidelity at k=3 must be far below k=2
        // (three applications synthesize any two-qubit gate exactly).
        let i2 = result.infidelity(2, 2).unwrap();
        let i3 = result.infidelity(2, 3).unwrap();
        assert!(i3 < i2, "k=3 ({i3}) should beat k=2 ({i2})");
        assert!(i3 < 1e-2, "k=3 infidelity should be small, got {i3}");
    }

    #[test]
    fn deeper_roots_need_more_gates() {
        let result = run_study(&StudyConfig::quick());
        // At k=3 the 4th-root basis cannot yet be near-exact while √iSWAP is.
        let sqrt_k3 = result.infidelity(2, 3).unwrap();
        let fourth_k3 = result.infidelity(4, 3).unwrap();
        assert!(fourth_k3 > sqrt_k3);
    }

    #[test]
    fn total_fidelity_improves_with_perfect_gates() {
        let result = run_study(&StudyConfig::quick());
        for &n in &result.config.roots {
            let poor = result.total(n, 0.95).unwrap();
            let good = result.total(n, 0.99).unwrap();
            assert!(good > poor, "n = {n}");
        }
    }

    #[test]
    fn ideal_model_favors_finer_roots_at_fixed_duration() {
        // The paper's argument: k=4 of ³√iSWAP (duration 1.33) beats k=3 of
        // √iSWAP (duration 1.5) because each pulse is shorter.
        let sqrt = ideal_total_fidelity(2, 3, 0.99);
        let third = ideal_total_fidelity(3, 4, 0.99);
        assert!(third > sqrt, "third-root {third} vs sqrt {sqrt}");
    }

    #[test]
    fn result_lookup_handles_missing_cells() {
        let result = run_study(&StudyConfig::quick());
        assert!(result.infidelity(2, 99).is_none());
        assert!(result.total(99, 0.99).is_none());
    }
}
