//! Analytic basis-gate counting (paper §2.3 and Observation 1).
//!
//! Each hardware modulator fixes a native two-qubit basis gate: the CR
//! modulator gives CNOT, the FSIM coupler gives SYC, and the SNAIL gives the
//! `ⁿ√iSWAP` family. Translating an algorithm into a basis requires a number
//! of basis-gate applications that depends only on the target's Weyl-chamber
//! class; this module encodes those counting rules:
//!
//! * **CNOT** — 0 for local gates, 1 for the CNOT class, 2 whenever the third
//!   canonical coordinate vanishes, 3 otherwise (the classic KAK result).
//! * **√iSWAP** — 0/1 analogously, 2 inside the region `c₁ ≥ c₂ + |c₃|`
//!   (Huang et al. 2021), 3 otherwise. A slightly larger fraction of the
//!   chamber needs only 2 √iSWAPs than 2 CNOTs, the paper's "information
//!   theoretic advantage".
//! * **SYC** — the best known analytic constructions need one more
//!   application than CNOT for non-trivial classes, and exactly 4 in the
//!   generic case (paper Observation 1).

use snailqc_circuit::Gate;
use snailqc_math::weyl::{weyl_coordinates, WeylCoordinates};
use snailqc_math::Matrix4;

/// Tolerance used when classifying Weyl-chamber coordinates.
pub const CLASS_TOL: f64 = 1e-9;

/// A native two-qubit basis gate choice (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum BasisGate {
    /// CNOT, native to the cross-resonance (CR) modulator — IBM.
    Cnot,
    /// √iSWAP, native to the SNAIL modulator — this paper.
    SqrtISwap,
    /// SYC = FSIM(π/2, π/6), native to the tunable coupler — Google.
    Syc,
}

impl BasisGate {
    /// Display label used in figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            BasisGate::Cnot => "CX",
            BasisGate::SqrtISwap => "sqrt-iSWAP",
            BasisGate::Syc => "SYC",
        }
    }

    /// The modulator that natively produces this basis gate.
    pub fn modulator(&self) -> &'static str {
        match self {
            BasisGate::Cnot => "CR",
            BasisGate::SqrtISwap => "SNAIL",
            BasisGate::Syc => "FSIM",
        }
    }

    /// All basis gates considered in the paper.
    pub fn all() -> [BasisGate; 3] {
        [BasisGate::Cnot, BasisGate::SqrtISwap, BasisGate::Syc]
    }

    /// Resolves a user-facing basis name forgivingly (case- and
    /// punctuation-insensitive, via [`snailqc_util::names_match`]'s
    /// normalization): `cnot`/`cx`, `syc`/`sycamore`, `sqrt-iswap`/`siswap`.
    /// `none` resolves to `Ok(None)` — leave circuits in their source gate
    /// set. This is the one basis matcher shared by the CLI, the serve
    /// daemon and device-spec files.
    pub fn by_name(name: &str) -> Result<Option<BasisGate>, String> {
        Ok(Some(match snailqc_util::normalize_name(name).as_str() {
            "none" => return Ok(None),
            "cnot" | "cx" => BasisGate::Cnot,
            "syc" | "sycamore" => BasisGate::Syc,
            "sqrtiswap" | "siswap" => BasisGate::SqrtISwap,
            _ => {
                return Err(format!(
                    "unknown basis `{name}` (cnot | syc | sqrt-iswap | none)"
                ))
            }
        }))
    }

    /// The circuit-IR gate for one application of this basis gate.
    pub fn gate(&self) -> Gate {
        match self {
            BasisGate::Cnot => Gate::CX,
            BasisGate::SqrtISwap => Gate::SqrtISwap,
            BasisGate::Syc => Gate::Syc,
        }
    }

    /// The 4×4 unitary of one application.
    pub fn matrix(&self) -> Matrix4 {
        self.gate().matrix4().expect("basis gates are two-qubit")
    }

    /// Number of applications of this basis gate required to implement a
    /// two-qubit unitary in the given Weyl class exactly (with free 1Q gates).
    pub fn count_for_coords(&self, w: &WeylCoordinates) -> usize {
        if w.is_local(CLASS_TOL) {
            return 0;
        }
        match self {
            BasisGate::Cnot => {
                if w.is_cnot_class(CLASS_TOL) {
                    1
                } else if w.c3.abs() <= CLASS_TOL {
                    2
                } else {
                    3
                }
            }
            BasisGate::SqrtISwap => {
                if w.is_sqrt_iswap_class(CLASS_TOL) {
                    1
                } else if w.in_two_sqrt_iswap_region(CLASS_TOL) {
                    2
                } else {
                    3
                }
            }
            BasisGate::Syc => {
                let syc_coords = weyl_coordinates(&snailqc_math::gates::syc());
                if w.approx_eq(&syc_coords, 1e-7) {
                    1
                } else {
                    // One more than the CNOT count, capped at the analytic
                    // bound of four (paper Observation 1).
                    (BasisGate::Cnot.count_for_coords(w) + 1).min(4)
                }
            }
        }
    }

    /// Number of applications needed for an arbitrary two-qubit unitary.
    pub fn count_for_unitary(&self, u: &Matrix4) -> usize {
        self.count_for_coords(&weyl_coordinates(u))
    }

    /// Number of applications needed for a circuit gate. Single-qubit gates
    /// cost zero. Unknown or parameterized two-qubit gates fall back to the
    /// unitary classification.
    pub fn count_for_gate(&self, gate: &Gate) -> usize {
        match gate.num_qubits() {
            1 => 0,
            _ => {
                let u = gate.matrix4().expect("two-qubit gate has a matrix");
                self.count_for_unitary(&u)
            }
        }
    }

    /// Number of applications needed to implement a SWAP (the routing
    /// primitive, paper §2.4.3): 3 for CNOT and √iSWAP, 4 for SYC.
    pub fn swap_cost(&self) -> usize {
        self.count_for_coords(&WeylCoordinates {
            c1: std::f64::consts::FRAC_PI_4,
            c2: std::f64::consts::FRAC_PI_4,
            c3: std::f64::consts::FRAC_PI_4,
        })
    }

    /// The worst-case number of applications for an arbitrary 2Q unitary.
    pub fn worst_case(&self) -> usize {
        match self {
            BasisGate::Cnot | BasisGate::SqrtISwap => 3,
            BasisGate::Syc => 4,
        }
    }

    /// Relative pulse duration of one application, normalized to a full
    /// iSWAP pulse (paper §6.3): √iSWAP is half an iSWAP; CNOT and SYC count
    /// as a full two-qubit pulse.
    pub fn pulse_fraction(&self) -> f64 {
        match self {
            BasisGate::SqrtISwap => 0.5,
            BasisGate::Cnot | BasisGate::Syc => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snailqc_math::gates;
    use snailqc_math::random::haar_unitary4;

    #[test]
    fn local_gates_cost_nothing() {
        let local = gates::rz(0.3).kron(&gates::h());
        for b in BasisGate::all() {
            assert_eq!(b.count_for_unitary(&local), 0, "{}", b.label());
        }
    }

    #[test]
    fn cnot_costs_in_each_basis() {
        let cx = gates::cx();
        assert_eq!(BasisGate::Cnot.count_for_unitary(&cx), 1);
        assert_eq!(BasisGate::SqrtISwap.count_for_unitary(&cx), 2);
        assert_eq!(BasisGate::Syc.count_for_unitary(&cx), 2);
    }

    #[test]
    fn swap_costs_match_paper() {
        // Paper §2.4.3: SWAP = 3 CNOT = 3 √iSWAP.
        assert_eq!(BasisGate::Cnot.swap_cost(), 3);
        assert_eq!(BasisGate::SqrtISwap.swap_cost(), 3);
        assert_eq!(BasisGate::Syc.swap_cost(), 4);
    }

    #[test]
    fn sqrt_iswap_is_free_in_its_own_basis() {
        assert_eq!(
            BasisGate::SqrtISwap.count_for_unitary(&gates::sqrt_iswap()),
            1
        );
        assert_eq!(BasisGate::Syc.count_for_unitary(&gates::syc()), 1);
        assert_eq!(BasisGate::Cnot.count_for_unitary(&gates::cz()), 1);
    }

    #[test]
    fn iswap_costs() {
        let iswap = gates::iswap();
        // iSWAP has c = (π/4, π/4, 0): two CNOTs, two √iSWAPs.
        assert_eq!(BasisGate::Cnot.count_for_unitary(&iswap), 2);
        assert_eq!(BasisGate::SqrtISwap.count_for_unitary(&iswap), 2);
    }

    #[test]
    fn controlled_phase_needs_two_in_cnot_basis() {
        for theta in [0.3, 1.0, 2.5] {
            assert_eq!(BasisGate::Cnot.count_for_unitary(&gates::cphase(theta)), 2);
            assert_eq!(BasisGate::Cnot.count_for_unitary(&gates::rzz(theta)), 2);
        }
    }

    #[test]
    fn haar_unitaries_mostly_need_three_cnots_but_often_two_sqrt_iswaps() {
        let mut rng = StdRng::seed_from_u64(77);
        let n = 200;
        let mut cnot2 = 0usize;
        let mut siswap2 = 0usize;
        for _ in 0..n {
            let u = haar_unitary4(&mut rng);
            let c = BasisGate::Cnot.count_for_unitary(&u);
            let s = BasisGate::SqrtISwap.count_for_unitary(&u);
            assert!((2..=3).contains(&c));
            assert!((2..=3).contains(&s));
            if c == 2 {
                cnot2 += 1;
            }
            if s == 2 {
                siswap2 += 1;
            }
        }
        // Haar-almost-surely CNOT needs 3; √iSWAP needs only 2 for a sizable
        // fraction of the chamber (paper Observation 1 / Huang et al.).
        assert!(cnot2 <= n / 20, "cnot2 = {cnot2}");
        assert!(siswap2 > n / 4, "siswap2 = {siswap2}");
    }

    #[test]
    fn worst_cases_and_pulse_fractions() {
        assert_eq!(BasisGate::Cnot.worst_case(), 3);
        assert_eq!(BasisGate::SqrtISwap.worst_case(), 3);
        assert_eq!(BasisGate::Syc.worst_case(), 4);
        assert!((BasisGate::SqrtISwap.pulse_fraction() - 0.5).abs() < 1e-12);
        assert!((BasisGate::Cnot.pulse_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_qubit_circuit_gates_cost_zero() {
        assert_eq!(BasisGate::Cnot.count_for_gate(&Gate::H), 0);
        assert_eq!(BasisGate::SqrtISwap.count_for_gate(&Gate::RZ(0.2)), 0);
    }

    #[test]
    fn swap_gate_classification_via_circuit_gate() {
        assert_eq!(BasisGate::Cnot.count_for_gate(&Gate::Swap), 3);
        assert_eq!(BasisGate::SqrtISwap.count_for_gate(&Gate::Swap), 3);
    }
}
