//! Property-based tests for basis-gate counting and the fidelity model.

use proptest::prelude::*;
use rand::SeedableRng;
use snailqc_decompose::{
    hilbert_schmidt_fidelity, nth_root_basis_fidelity, pulse_duration, total_fidelity, BasisGate,
};
use snailqc_math::gates;
use snailqc_math::random::{haar_unitary4, random_local_dressing};
use snailqc_math::weyl::weyl_coordinates;

fn rng_from(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn counts_are_within_worst_case_for_haar_targets(seed in 0u64..1000) {
        let u = haar_unitary4(&mut rng_from(seed));
        for basis in BasisGate::all() {
            let k = basis.count_for_unitary(&u);
            prop_assert!(k <= basis.worst_case());
            prop_assert!(k >= 1, "Haar targets are never local");
        }
    }

    #[test]
    fn counts_are_invariant_under_local_dressing(seed in 0u64..400) {
        let mut rng = rng_from(seed);
        let core = haar_unitary4(&mut rng);
        let dressed = random_local_dressing(&core, &mut rng);
        for basis in BasisGate::all() {
            prop_assert_eq!(basis.count_for_unitary(&core), basis.count_for_unitary(&dressed));
        }
    }

    #[test]
    fn sqrt_iswap_never_needs_more_than_cnot_plus_one_and_syc_never_fewer(seed in 0u64..400) {
        let u = haar_unitary4(&mut rng_from(seed));
        let cx = BasisGate::Cnot.count_for_unitary(&u);
        let si = BasisGate::SqrtISwap.count_for_unitary(&u);
        let syc = BasisGate::Syc.count_for_unitary(&u);
        prop_assert!(si <= 3 && cx <= 3 && syc <= 4);
        prop_assert!(syc >= cx, "SYC should never beat CNOT under the analytic rules");
    }

    #[test]
    fn cphase_family_needs_at_most_two(theta in 0.01..std::f64::consts::TAU) {
        let u = gates::cphase(theta);
        prop_assert!(BasisGate::Cnot.count_for_unitary(&u) <= 2);
        prop_assert!(BasisGate::SqrtISwap.count_for_unitary(&u) <= 2);
    }

    #[test]
    fn fractional_iswap_needs_at_most_two_sqrt_iswaps(t in 0.01..1.0f64) {
        // Any XY-family gate has c3 = 0 and c1 = c2, which lies inside the
        // two-application region of the √iSWAP basis.
        let u = gates::iswap_pow(t);
        let w = weyl_coordinates(&u);
        prop_assert!(w.c3.abs() < 1e-9);
        prop_assert!(BasisGate::SqrtISwap.count_for_unitary(&u) <= 2);
    }

    #[test]
    fn hilbert_schmidt_fidelity_is_phase_invariant_and_bounded(seed in 0u64..400, phase in 0.0..std::f64::consts::TAU) {
        let u = haar_unitary4(&mut rng_from(seed));
        let v = haar_unitary4(&mut rng_from(seed ^ 0xA5A5));
        let f = hilbert_schmidt_fidelity(&u, &v);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&f));
        let f_phase = hilbert_schmidt_fidelity(&u, &v.scale(snailqc_math::C64::cis(phase)));
        prop_assert!((f - f_phase).abs() < 1e-9);
        prop_assert!((hilbert_schmidt_fidelity(&u, &u) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn basis_fidelity_model_is_monotone(fb in 0.5..1.0f64, n in 1u32..10) {
        let f_n = nth_root_basis_fidelity(fb, n);
        let f_n1 = nth_root_basis_fidelity(fb, n + 1);
        prop_assert!(f_n1 >= f_n);
        prop_assert!(f_n >= fb);
        prop_assert!(f_n <= 1.0);
    }

    #[test]
    fn total_fidelity_decreases_with_more_gates(fd in 0.5..1.0f64, fb in 0.5..1.0f64, k in 1usize..8) {
        prop_assert!(total_fidelity(fd, fb, k + 1) <= total_fidelity(fd, fb, k) + 1e-12);
        prop_assert!(total_fidelity(fd, fb, k) <= fd + 1e-12);
    }

    #[test]
    fn pulse_duration_scales_linearly(k in 1usize..10, n in 1u32..10) {
        let d = pulse_duration(k, n);
        prop_assert!((d - k as f64 / n as f64).abs() < 1e-12);
        prop_assert!(pulse_duration(k + 1, n) > d);
        prop_assert!(pulse_duration(k, n + 1) < d);
    }

    #[test]
    fn swap_cost_dominates_every_single_gate_cost(seed in 0u64..200) {
        // Routing a SWAP is never cheaper than the most expensive random
        // two-qubit gate under the same basis (it sits at the chamber corner).
        let u = haar_unitary4(&mut rng_from(seed));
        for basis in BasisGate::all() {
            prop_assert!(basis.swap_cost() >= basis.count_for_unitary(&u));
        }
    }
}
